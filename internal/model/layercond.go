package model

import (
	"fmt"
	"sort"
	"strings"

	"cloversim/internal/machine"
	"cloversim/internal/trace"
)

// LCAnalysis reports the layer-condition status of one loop on one
// machine for a given inner (row) dimension — the Sec. II-C machinery of
// the paper, generalized so downstream users can analyze their own
// stencils and derive blocking factors.
type LCAnalysis struct {
	RowElems int
	// RowsNeeded is the number of grid rows that must stay resident for
	// full reuse: the maximal row-offset spread over all arrays.
	RowsNeeded int
	// RequiredBytes is the cache needed (with the conventional factor-2
	// safety margin) to satisfy the LC for all arrays simultaneously.
	RequiredBytes int
	// Level is the innermost cache level satisfying the LC (1, 2, 3), or
	// 0 if only memory-resident (LC broken everywhere).
	Level int
	// BytesPerItLCF / BytesPerItLCB are the resulting code balances.
	BytesPerItLCF, BytesPerItLCB int
	// MaxBlock is the largest inner block size (elements) for which the
	// LC still holds in the L2 cache — the tiling advice of Sec. II-C.
	MaxBlock int
}

// rowSpread returns, per array, the number of distinct row offsets and
// the total spread (max-min+1) of accessed rows.
func rowSpread(l *trace.Loop) (arrays int, maxSpread int, totalRows int) {
	type span struct{ lo, hi int }
	spans := map[string]*span{}
	add := func(name string, dk int) {
		s, ok := spans[name]
		if !ok {
			spans[name] = &span{dk, dk}
			return
		}
		if dk < s.lo {
			s.lo = dk
		}
		if dk > s.hi {
			s.hi = dk
		}
	}
	for _, r := range l.Reads {
		add(r.A.Name, r.DK)
	}
	for _, w := range l.Writes {
		add(w.A.Name, w.DK)
	}
	for _, s := range spans {
		spread := s.hi - s.lo + 1
		if spread > maxSpread {
			maxSpread = spread
		}
		totalRows += spread
	}
	return len(spans), maxSpread, totalRows
}

// AnalyzeLC evaluates the layer conditions of a loop with rows of
// rowElems elements on the given machine. The per-core cache capacity at
// each level is L1, L1+L2, and L1+L2+L3 slice, following the paper's
// aggregate-cache argument (Sec. IV-C).
func AnalyzeLC(l *trace.Loop, rowElems int, spec *machine.Spec) LCAnalysis {
	_, maxSpread, totalRows := rowSpread(l)
	m := FromLoop(l)

	a := LCAnalysis{
		RowElems:      rowElems,
		RowsNeeded:    maxSpread,
		RequiredBytes: LayerCondition(totalRows, rowElems),
		BytesPerItLCF: m.BytesMin(),
		BytesPerItLCB: m.BytesLCB(),
	}

	caps := []int{
		spec.L1.SizeBytes,
		spec.L1.SizeBytes + spec.L2.SizeBytes,
		spec.L1.SizeBytes + spec.L2.SizeBytes + spec.L3Slice().SizeBytes,
	}
	for level := len(caps); level >= 1; level-- {
		if a.RequiredBytes < caps[level-1] {
			a.Level = level
		}
	}

	// Largest block size that still fits the L2-level capacity.
	if totalRows > 0 {
		a.MaxBlock = caps[1] / (2 * totalRows * ElemBytes)
	}
	return a
}

// Holds reports whether any cache level satisfies the LC.
func (a LCAnalysis) Holds() bool { return a.Level > 0 }

// BlockingNeeded reports whether loop tiling is required for minimum
// code balance at this row length.
func (a LCAnalysis) BlockingNeeded() bool { return !a.Holds() }

// String renders a compact report.
func (a LCAnalysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rows %d x %d elems need %.0f KiB", a.RowsNeeded, a.RowElems,
		float64(a.RequiredBytes)/1024)
	if a.Holds() {
		fmt.Fprintf(&b, "; LC holds at L%d", a.Level)
	} else {
		fmt.Fprintf(&b, "; LC broken (block to <= %d elems)", a.MaxBlock)
	}
	fmt.Fprintf(&b, "; balance %d (LC ok) vs %d (broken) byte/it", a.BytesPerItLCF, a.BytesPerItLCB)
	return b.String()
}

// LCSweep evaluates the LC of a loop over a range of decompositions of
// the paper's grid: for each rank count, the local inner dimension is
// gridX / chunksX. It returns the rank counts whose LC breaks — which
// for the Tiny set should be none (the paper verifies primes do NOT
// break LCs, Sec. IV-C).
func LCSweep(l *trace.Loop, spec *machine.Spec, innerDims map[int]int) []int {
	var broken []int
	for ranks, dim := range innerDims {
		if !AnalyzeLC(l, dim, spec).Holds() {
			broken = append(broken, ranks)
		}
	}
	sort.Ints(broken)
	return broken
}
