// Package model implements the paper's first-principles performance
// models: per-loop code-balance limits (Table I), layer-condition cache
// requirements (Eq. 1/2), the Roofline performance limit (Sec. II-A), the
// refined full-node model with the phenomenological SpecI2M factor
// (Fig. 7), and the halo/partial-line overhead model of the prime-number
// effect (Sec. V-C).
package model

import (
	"math"

	"cloversim/internal/trace"
)

// ElemBytes is the element size of all modeled arrays (double precision).
const ElemBytes = 8

// LoopModel is the analytic traffic model of one loop, i.e. one row of
// Table I.
type LoopModel struct {
	Name    string
	Arrays  int // distinct arrays touched
	RDLCF   int // elements read per it, layer conditions fulfilled
	RDLCB   int // elements read per it, layer conditions broken
	WR      int // elements written per it
	RDWR    int // written elements that are read first (updates)
	FlopsIt int // flops per iteration
}

// Evadable returns the number of write streams whose write-allocate can
// be evaded (written but not read beforehand).
func (m LoopModel) Evadable() int { return m.WR - m.RDWR }

// BytesMin returns the minimum code balance: LC fulfilled, no WAs.
func (m LoopModel) BytesMin() int { return ElemBytes * (m.RDLCF + m.WR) }

// BytesLCFWA returns the code balance with fulfilled LCs but full WAs —
// the expected single-core value (byte/it_LCF,WA in Table I).
func (m LoopModel) BytesLCFWA() int { return ElemBytes * (m.RDLCF + m.WR + m.Evadable()) }

// BytesLCB returns the code balance with broken LCs and no WAs.
func (m LoopModel) BytesLCB() int { return ElemBytes * (m.RDLCB + m.WR) }

// BytesMax returns the worst case: broken LCs and full WAs.
func (m LoopModel) BytesMax() int { return ElemBytes * (m.RDLCB + m.WR + m.Evadable()) }

// Intensity returns flops per byte at the given code balance.
func (m LoopModel) Intensity(bytesPerIt float64) float64 {
	if bytesPerIt == 0 {
		return 0
	}
	return float64(m.FlopsIt) / bytesPerIt
}

// FromLoop derives the analytic model from a trace.Loop definition, so
// the paper's hand-derived counts can be unit-tested against the encoded
// stencil offsets.
func FromLoop(l *trace.Loop) LoopModel {
	wr, upd := l.CountWrites()
	arrays := map[string]bool{}
	for _, r := range l.Reads {
		arrays[r.A.Name] = true
	}
	for _, w := range l.Writes {
		arrays[w.A.Name] = true
	}
	return LoopModel{
		Name:    l.Name,
		Arrays:  len(arrays),
		RDLCF:   l.CountLCF(),
		RDLCB:   l.CountLCB(),
		WR:      wr,
		RDWR:    upd,
		FlopsIt: l.FlopsPerIt,
	}
}

// RefinedPrediction returns the Fig. 7 refined model: the minimum code
// balance plus the residual write-allocate traffic under SpecI2M with the
// phenomenological store factor (1.2 on the ICX full node means 20% of
// the evadable WA traffic remains).
//
// Loops without SpecI2M-eligible stores (eligible=false) keep their full
// write-allocate traffic.
func (m LoopModel) RefinedPrediction(storeFactor float64, eligible bool) float64 {
	base := float64(m.BytesMin())
	if m.Evadable() == 0 {
		return base
	}
	if !eligible {
		return float64(m.BytesLCFWA())
	}
	return base + (storeFactor-1)*float64(ElemBytes*m.Evadable())
}

// NTPrediction returns the optimized-code model: one evadable write
// stream uses NT stores (revert fraction ntRevert), any remaining
// evadable stream is covered by SpecI2M at storeFactor.
func (m LoopModel) NTPrediction(storeFactor, ntRevert float64, eligible bool) float64 {
	base := float64(m.BytesMin())
	ev := m.Evadable()
	if ev == 0 {
		return base
	}
	// First evadable stream: NT stores; residual WA traffic = revert
	// fraction of one element.
	b := base + ntRevert*ElemBytes
	if ev > 1 {
		rest := float64(ElemBytes * (ev - 1))
		if eligible {
			b += (storeFactor - 1) * rest
		} else {
			b += rest
		}
	}
	return b
}

// LayerCondition returns the cache size in bytes required to keep `rows`
// rows of `rowElems` elements resident, using the conventional safety
// factor of 2 (Eq. 2: n*M*8 < C/2).
func LayerCondition(rows, rowElems int) int {
	return 2 * rows * rowElems * ElemBytes
}

// LayerConditionHolds reports whether the LC for `rows` rows fits a cache
// of size cacheBytes.
func LayerConditionHolds(rows, rowElems, cacheBytes int) bool {
	return LayerCondition(rows, rowElems) < cacheBytes
}

// Roofline returns the performance limit min(Pmax, I*bandwidth) in
// flop/s for intensity I (flop/byte).
func Roofline(pmax, intensity, bandwidth float64) float64 {
	return math.Min(pmax, intensity*bandwidth)
}

// RooflineIts returns the iteration throughput limit bandwidth/Bc in
// it/s for a memory-bound loop with code balance bytesPerIt.
func RooflineIts(bandwidth, bytesPerIt float64) float64 {
	if bytesPerIt == 0 {
		return math.Inf(1)
	}
	return bandwidth / bytesPerIt
}

// HaloReadOverhead returns the relative extra read volume per stream for
// a local inner dimension of `inner` elements: one extra cache line (8
// elements) of halo per row (Sec. V-C: 8/(216+8) = 3.57% for 71 ranks).
func HaloReadOverhead(inner int) float64 {
	return 8.0 / float64(inner+8)
}

// PartialLineWriteOverhead returns the relative extra write volume caused
// by unaligned row starts/ends: up to one cache line per row of inner
// elements, matching the paper's measured 1.09% average (Sec. V-C).
func PartialLineWriteOverhead(inner int) float64 {
	return 8.0 / float64(inner+8)
}

// PrimeEffectReadPenalty estimates the SpecI2M-related extra read volume
// for an evadable write stream when the inner loop is short: the run
// detector needs minRun full lines per row before claims begin, so the
// unclaimed fraction grows as rows shrink.
func PrimeEffectReadPenalty(inner, minRun int, eff float64) float64 {
	lines := float64(inner) / 8.0
	if lines <= 0 {
		return eff
	}
	claimable := (lines - float64(minRun)) / lines
	if claimable < 0 {
		claimable = 0
	}
	return eff * (1 - claimable) // lost evasion fraction
}
