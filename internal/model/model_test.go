package model

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable1DerivedColumns checks the four byte/it columns of the paper's
// Table I against the LoopModel formulas for all 22 loops. These are the
// paper's exact published numbers.
func TestTable1DerivedColumns(t *testing.T) {
	want := map[string][4]int{ // min, LCF+WA, LCB, max
		"am00":  {40, 56, 48, 64},
		"am01":  {40, 56, 48, 64},
		"am02":  {32, 48, 40, 56},
		"am03":  {32, 48, 32, 48},
		"am04":  {16, 24, 24, 32},
		"am05":  {40, 56, 56, 72},
		"am06":  {32, 40, 32, 40},
		"am07":  {40, 40, 40, 40},
		"am08":  {16, 24, 24, 32},
		"am09":  {40, 56, 64, 80},
		"am10":  {32, 40, 48, 56},
		"am11":  {40, 40, 48, 48},
		"ac00":  {40, 56, 48, 64},
		"ac01":  {32, 48, 32, 48},
		"ac02":  {48, 64, 48, 64},
		"ac03":  {64, 64, 64, 64},
		"ac04":  {40, 56, 48, 64},
		"ac05":  {32, 48, 40, 56},
		"ac06":  {48, 64, 80, 96},
		"ac07":  {64, 64, 88, 88},
		"pdv00": {88, 104, 112, 128},
		"pdv01": {104, 120, 144, 160},
	}
	if len(Table1) != 22 {
		t.Fatalf("Table1 has %d rows, want 22", len(Table1))
	}
	for _, r := range Table1 {
		w, ok := want[r.Name]
		if !ok {
			t.Fatalf("unexpected loop %s", r.Name)
		}
		got := [4]int{r.BytesMin(), r.BytesLCFWA(), r.BytesLCB(), r.BytesMax()}
		if got != w {
			t.Errorf("%s: byte/it columns = %v, paper says %v", r.Name, got, w)
		}
	}
}

// TestTable1MeasuredNearLCFWA verifies the paper's observation that the
// measured single-core balance matches the fulfilled-LC + write-allocate
// prediction within a few percent for every loop.
func TestTable1MeasuredNearLCFWA(t *testing.T) {
	for _, r := range Table1 {
		pred := float64(r.BytesLCFWA())
		err := math.Abs(r.MeasuredSingleCore-pred) / pred
		if err > 0.05 {
			t.Errorf("%s: measured %.2f deviates %.1f%% from LCF+WA %.0f",
				r.Name, r.MeasuredSingleCore, 100*err, pred)
		}
	}
}

func TestTable1ByName(t *testing.T) {
	r, ok := Table1ByName("am04")
	if !ok || r.WR != 1 || r.RDLCF != 1 {
		t.Fatalf("am04 lookup failed: %+v ok=%v", r, ok)
	}
	if _, ok := Table1ByName("zz99"); ok {
		t.Fatal("bogus loop name found")
	}
}

func TestHotspotLoopNamesOrder(t *testing.T) {
	names := HotspotLoopNames()
	if len(names) != 22 || names[0] != "am00" || names[21] != "pdv01" {
		t.Fatalf("unexpected loop name order: %v", names)
	}
}

func TestEvadable(t *testing.T) {
	m := LoopModel{WR: 2, RDWR: 2}
	if m.Evadable() != 0 {
		t.Errorf("update-only loop should have no evadable writes, got %d", m.Evadable())
	}
	m = LoopModel{WR: 2, RDWR: 0}
	if m.Evadable() != 2 {
		t.Errorf("want 2 evadable writes, got %d", m.Evadable())
	}
}

// TestRefinedPrediction checks the Fig. 7 model: factor 1.2 leaves 20% of
// the evadable WA traffic.
func TestRefinedPrediction(t *testing.T) {
	r, _ := Table1ByName("am04") // min 16, evadable 1
	got := r.RefinedPrediction(1.2, true)
	if math.Abs(got-17.6) > 1e-9 {
		t.Errorf("am04 refined prediction = %g, want 17.6", got)
	}
	// Ineligible loops keep the full write-allocate.
	got = r.RefinedPrediction(1.2, false)
	if got != float64(r.BytesLCFWA()) {
		t.Errorf("ineligible prediction = %g, want %d", got, r.BytesLCFWA())
	}
	// Class (iii) loops (no evadable writes) are unaffected by the factor.
	r3, _ := Table1ByName("am07")
	if r3.RefinedPrediction(1.2, true) != float64(r3.BytesMin()) {
		t.Errorf("am07 should be factor-invariant")
	}
}

func TestNTPrediction(t *testing.T) {
	r, _ := Table1ByName("am04")
	// Perfect NT stores: min balance.
	if got := r.NTPrediction(1.2, 0, true); got != 16 {
		t.Errorf("am04 NT prediction with no reverts = %g, want 16", got)
	}
	// 16.5% reverts add 1.32 bytes.
	if got := r.NTPrediction(1.2, 0.165, true); math.Abs(got-17.32) > 1e-9 {
		t.Errorf("am04 NT prediction = %g, want 17.32", got)
	}
	// Two evadable streams: one NT, one SpecI2M.
	r2, _ := Table1ByName("am00") // min 40, evadable 2
	want := 40 + 0.165*8 + 0.2*8
	if got := r2.NTPrediction(1.2, 0.165, true); math.Abs(got-want) > 1e-9 {
		t.Errorf("am00 NT prediction = %g, want %g", got, want)
	}
}

func TestLayerCondition(t *testing.T) {
	// Paper Eq. 2: two rows of 15360 doubles need C > 492 kB.
	c := LayerCondition(2, 15360)
	if c != 2*2*15360*8 {
		t.Fatalf("LayerCondition = %d", c)
	}
	if c < 490_000 || c > 495_000 {
		t.Errorf("paper's 492 kB check failed: %d", c)
	}
	if !LayerConditionHolds(2, 15360, 1<<20) {
		t.Error("1 MiB cache should satisfy the Tiny-set LC")
	}
	if LayerConditionHolds(2, 15360, 400_000) {
		t.Error("400 kB cache should break the Tiny-set LC")
	}
}

func TestRoofline(t *testing.T) {
	// Memory bound: P = I*bs.
	if got := Roofline(1e12, 0.5, 100e9); got != 50e9 {
		t.Errorf("memory-bound roofline = %g", got)
	}
	// Core bound: P = Pmax.
	if got := Roofline(1e10, 100, 100e9); got != 1e10 {
		t.Errorf("core-bound roofline = %g", got)
	}
	if got := RooflineIts(90e9, 24); math.Abs(got-3.75e9) > 1 {
		t.Errorf("iteration roofline = %g, want 3.75e9", got)
	}
	if !math.IsInf(RooflineIts(90e9, 0), 1) {
		t.Error("zero balance should give infinite iteration rate")
	}
}

func TestHaloReadOverhead(t *testing.T) {
	// Paper: 8/(216+8) = 3.57% for 71 ranks.
	got := HaloReadOverhead(216)
	if math.Abs(got-0.0357) > 0.0005 {
		t.Errorf("halo overhead for 216 = %g, want ~0.0357", got)
	}
	if HaloReadOverhead(1920) > got {
		t.Error("longer inner dimension must have lower halo overhead")
	}
}

func TestPrimeEffectReadPenalty(t *testing.T) {
	// Short rows lose more evasion than long rows.
	short := PrimeEffectReadPenalty(216, 5, 0.8)
	long := PrimeEffectReadPenalty(1920, 5, 0.8)
	if short <= long {
		t.Errorf("short-row penalty %g should exceed long-row %g", short, long)
	}
	// Rows shorter than the warm-up lose everything.
	if got := PrimeEffectReadPenalty(16, 5, 0.8); got != 0.8 {
		t.Errorf("tiny rows should lose all evasion, got %g", got)
	}
}

// Property: for any counts, min <= LCF,WA <= max and min <= LCB <= max.
func TestBalanceOrderingProperty(t *testing.T) {
	f := func(rdLCF, extraLCB, wr, rdwr uint8) bool {
		m := LoopModel{
			RDLCF: int(rdLCF % 16),
			RDLCB: int(rdLCF%16) + int(extraLCB%8),
			WR:    int(wr%4) + 1,
		}
		m.RDWR = int(rdwr) % (m.WR + 1)
		return m.BytesMin() <= m.BytesLCFWA() &&
			m.BytesLCFWA() <= m.BytesMax() &&
			m.BytesMin() <= m.BytesLCB() &&
			m.BytesLCB() <= m.BytesMax()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
