package model

import (
	"strings"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/trace"
)

// am04Loop builds the Listing 3 loop with a configurable row length.
func am04Loop(rowElems int) *trace.Loop {
	ar := trace.NewArena(true)
	mf := ar.Alloc("mass_flux_x", 0, rowElems+2, 0, 63)
	nf := ar.Alloc("node_flux", 0, rowElems+2, 0, 63)
	return &trace.Loop{
		Name: "am04",
		Reads: []trace.Access{
			{A: mf, DJ: 0, DK: -1}, {A: mf, DJ: 0, DK: 0},
			{A: mf, DJ: 1, DK: -1}, {A: mf, DJ: 1, DK: 0},
		},
		Writes:     []trace.Write{{A: nf}},
		FlopsPerIt: 4,
	}
}

// TestAM04LayerConditionTiny reproduces the paper's Eq. 2 argument: with
// M = 15360 the LC needs two rows of mass_flux_x (~492 kB with the
// safety factor including the write stream's row) and is satisfied by
// the aggregate per-core L2+L3 cache.
func TestAM04LayerConditionTiny(t *testing.T) {
	a := AnalyzeLC(am04Loop(15360), 15360, machine.ICX8360Y())
	if a.RowsNeeded != 2 {
		t.Errorf("am04 needs %d rows, want 2 (rows k-1 and k)", a.RowsNeeded)
	}
	if !a.Holds() {
		t.Fatalf("Tiny-set LC must hold: %s", a)
	}
	if a.Level == 1 {
		t.Errorf("full Tiny rows cannot fit L1: %s", a)
	}
	if a.BytesPerItLCF != 16 || a.BytesPerItLCB != 24 {
		t.Errorf("am04 balances %d/%d, want 16/24", a.BytesPerItLCF, a.BytesPerItLCB)
	}
}

// TestLCBreaksForHugeRows: rows beyond the aggregate cache break the LC
// and the analysis suggests a valid block size.
func TestLCBreaksForHugeRows(t *testing.T) {
	huge := 1 << 21 // 2M elements/row: 3 rows x 16MB >> 2.8MB
	a := AnalyzeLC(am04Loop(huge), huge, machine.ICX8360Y())
	if a.Holds() {
		t.Fatalf("LC should break: %s", a)
	}
	if !a.BlockingNeeded() || a.MaxBlock <= 0 {
		t.Fatalf("blocking advice missing: %s", a)
	}
	// The suggested block must itself satisfy the LC.
	b := AnalyzeLC(am04Loop(a.MaxBlock), a.MaxBlock, machine.ICX8360Y())
	if !b.Holds() {
		t.Errorf("suggested block %d still breaks the LC", a.MaxBlock)
	}
	if !strings.Contains(a.String(), "block") {
		t.Errorf("report should mention blocking: %s", a)
	}
}

// TestLCSweepPrimesDontBreak reproduces the paper's Sec. IV-C argument:
// for the Tiny grid no rank count between 1 and 72 breaks the am04 LC —
// so broken LCs cannot explain the prime-number effect.
func TestLCSweepPrimesDontBreak(t *testing.T) {
	dims := map[int]int{}
	for n := 1; n <= 72; n++ {
		dims[n] = 15360 // prime counts keep the full row length (1D cut)
	}
	broken := LCSweep(am04Loop(15360), machine.ICX8360Y(), dims)
	if len(broken) != 0 {
		t.Errorf("LC broken for rank counts %v — contradicts the paper", broken)
	}
}

func TestLCReportString(t *testing.T) {
	a := AnalyzeLC(am04Loop(1920), 1920, machine.ICX8360Y())
	s := a.String()
	if !strings.Contains(s, "LC holds") || !strings.Contains(s, "byte/it") {
		t.Errorf("report: %s", s)
	}
}
