package cloverleaf

import (
	"math"
	"runtime"
	"sync"
)

// Threading: the SPEChpc CloverLeaf combines MPI with OpenMP; the Go
// equivalent parallelizes every kernel's outer (k) loop over a fixed
// worker count with static banding. Because bands partition k and every
// kernel writes only at (j,k) while reading other arrays, banding is
// race-free and — since the per-k arithmetic order is unchanged —
// bitwise identical to the serial execution.

// SetThreads configures the worker count used by all kernels on this
// chunk (0 or 1 = serial, negative = GOMAXPROCS).
func (c *Chunk) SetThreads(n int) {
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.threads = n
}

// Threads returns the configured worker count.
func (c *Chunk) Threads() int {
	if c.threads <= 1 {
		return 1
	}
	return c.threads
}

// parK runs fn(k) for k in [kLo, kHi], banded over the chunk's workers.
func (c *Chunk) parK(kLo, kHi int, fn func(k int)) {
	n := kHi - kLo + 1
	if n <= 0 {
		return
	}
	t := c.Threads()
	if t == 1 || n < 2*t {
		for k := kLo; k <= kHi; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	band := (n + t - 1) / t
	for w := 0; w < t; w++ {
		lo := kLo + w*band
		if lo > kHi {
			break
		}
		hi := lo + band - 1
		if hi > kHi {
			hi = kHi
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k <= hi; k++ {
				fn(k)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// parKMin runs fn(k) for k in [kLo, kHi] and returns the minimum of the
// per-k results (used by the timestep reduction).
func (c *Chunk) parKMin(kLo, kHi int, fn func(k int) float64) float64 {
	n := kHi - kLo + 1
	if n <= 0 {
		return math.Inf(1)
	}
	t := c.Threads()
	if t == 1 || n < 2*t {
		min := math.Inf(1)
		for k := kLo; k <= kHi; k++ {
			min = math.Min(min, fn(k))
		}
		return min
	}
	var wg sync.WaitGroup
	band := (n + t - 1) / t
	mins := make([]float64, t)
	for w := 0; w < t; w++ {
		mins[w] = math.Inf(1)
		lo := kLo + w*band
		if lo > kHi {
			continue
		}
		hi := lo + band - 1
		if hi > kHi {
			hi = kHi
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := math.Inf(1)
			for k := lo; k <= hi; k++ {
				m = math.Min(m, fn(k))
			}
			mins[w] = m
		}(w, lo, hi)
	}
	wg.Wait()
	min := math.Inf(1)
	for _, m := range mins {
		min = math.Min(min, m)
	}
	return min
}
