// Package cloverleaf implements the CloverLeaf mini-app: a 2D
// Lagrangian-Eulerian hydrodynamics code solving the compressible Euler
// equations on a staggered Cartesian grid with an explicit second-order
// method (Sec. II-B of the paper; SPEChpc 2021 benchmark 519.clvleaf).
//
// The package contains both the *physics* (all kernels execute real
// double-precision arithmetic, validated by conservation and symmetry
// tests) and the *traffic specifications* of the hotspot loops (Table I),
// which are replayed through internal/trace to reproduce the paper's
// memory-traffic measurements.
package cloverleaf

import "fmt"

// Field is a 2D array with inclusive index bounds (Fortran-style), laid
// out row-major with the j (x) index fastest.
type Field struct {
	JLo, JHi, KLo, KHi int
	row                int
	V                  []float64
}

// NewField allocates a field spanning [jlo,jhi] x [klo,khi] inclusive.
func NewField(jlo, jhi, klo, khi int) *Field {
	row := jhi - jlo + 1
	if row <= 0 || khi-klo+1 <= 0 {
		panic(fmt.Sprintf("cloverleaf: invalid field bounds [%d,%d]x[%d,%d]", jlo, jhi, klo, khi))
	}
	return &Field{
		JLo: jlo, JHi: jhi, KLo: klo, KHi: khi,
		row: row,
		V:   make([]float64, row*(khi-klo+1)),
	}
}

// Idx returns the flat index of (j,k).
func (f *Field) Idx(j, k int) int { return (k-f.KLo)*f.row + (j - f.JLo) }

// At returns the value at (j,k).
func (f *Field) At(j, k int) float64 { return f.V[(k-f.KLo)*f.row+(j-f.JLo)] }

// Set assigns the value at (j,k).
func (f *Field) Set(j, k int, v float64) { f.V[(k-f.KLo)*f.row+(j-f.JLo)] = v }

// Add accumulates into (j,k).
func (f *Field) Add(j, k int, v float64) { f.V[(k-f.KLo)*f.row+(j-f.JLo)] += v }

// Row returns the padded row length in elements.
func (f *Field) Row() int { return f.row }

// Fill sets every element to v.
func (f *Field) Fill(v float64) {
	for i := range f.V {
		f.V[i] = v
	}
}

// CopyFrom copies the full contents of src (same shape required).
func (f *Field) CopyFrom(src *Field) {
	if len(f.V) != len(src.V) {
		panic("cloverleaf: CopyFrom shape mismatch")
	}
	copy(f.V, src.V)
}

// Line1D is a 1D auxiliary array with inclusive bounds (cell widths,
// vertex coordinates).
type Line1D struct {
	Lo, Hi int
	V      []float64
}

// NewLine1D allocates a 1D line spanning [lo,hi] inclusive.
func NewLine1D(lo, hi int) *Line1D {
	return &Line1D{Lo: lo, Hi: hi, V: make([]float64, hi-lo+1)}
}

// At returns the value at i.
func (l *Line1D) At(i int) float64 { return l.V[i-l.Lo] }

// Set assigns the value at i.
func (l *Line1D) Set(i int, v float64) { l.V[i-l.Lo] = v }
