package cloverleaf

import (
	"math"
	"testing"
)

// TestReflectiveBoundaryKinds checks the physical boundary conditions:
// cell fields mirror symmetrically, the normal velocity component flips
// sign, flux components flip at their normal boundary.
func TestReflectiveBoundaryKinds(t *testing.T) {
	cfg := Small(16, 1)
	c := NewChunk(cfg, 1, 16, 1, 16)

	// Give the fields recognizable interior values.
	for k := 1; k <= 16; k++ {
		for j := 1; j <= 16; j++ {
			c.Density0.Set(j, k, float64(100*j+k))
		}
	}
	for k := 1; k <= 17; k++ {
		for j := 1; j <= 17; j++ {
			c.XVel0.Set(j, k, float64(10*j+k))
		}
	}
	c.UpdateHaloSerial([]HaloField{
		{c.Density0, KindCell},
		{c.XVel0, KindNodeX},
	}, 2)

	// Cell symmetry at the left boundary: f(0,k) == f(1,k), f(-1,k) == f(2,k).
	for k := 1; k <= 16; k++ {
		if c.Density0.At(0, k) != c.Density0.At(1, k) {
			t.Fatalf("cell reflect depth 1 wrong at k=%d", k)
		}
		if c.Density0.At(-1, k) != c.Density0.At(2, k) {
			t.Fatalf("cell reflect depth 2 wrong at k=%d", k)
		}
	}
	// Node antisymmetry at the left boundary: xvel(0,k) == -xvel(2,k)
	// (mirror about the boundary node j=1).
	for k := 1; k <= 16; k++ {
		if c.XVel0.At(0, k) != -c.XVel0.At(2, k) {
			t.Fatalf("xvel antisymmetry wrong at k=%d: %g vs %g",
				k, c.XVel0.At(0, k), c.XVel0.At(2, k))
		}
	}
	// y boundary: xvel is tangential there — symmetric, no sign flip.
	for j := 1; j <= 16; j++ {
		if c.XVel0.At(j, 0) != c.XVel0.At(j, 2) {
			t.Fatalf("xvel y-symmetry wrong at j=%d", j)
		}
	}
}

// TestBoundaryVelocityStaysZero: with reflective walls, the normal
// velocity on the physical boundary nodes remains (anti)symmetric over a
// full run — the condition for mass conservation.
func TestBoundaryVelocityStaysZero(t *testing.T) {
	cfg := Small(32, 10)
	r := NewSerialRank(cfg)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	c := r.Chunk
	// After reflection, xvel(0,k) = -xvel(2,k): verify the halo keeps
	// the antisymmetric property (the solver reads it every step).
	c.UpdateHaloSerial([]HaloField{{c.XVel0, KindNodeX}}, 1)
	for k := 1; k <= 32; k++ {
		if got := c.XVel0.At(0, k) + c.XVel0.At(2, k); math.Abs(got) > 1e-15 {
			t.Fatalf("antisymmetry violated at k=%d: %g", k, got)
		}
	}
}

// TestPackUnpackRoundtrip: column/row packing preserves values exactly.
func TestPackUnpackRoundtrip(t *testing.T) {
	f := NewField(-2, 10, -2, 8)
	for i := range f.V {
		f.V[i] = float64(i) * 1.5
	}
	cols := packColumns(f, 3, 2)
	g := NewField(-2, 10, -2, 8)
	unpackColumns(g, 3, 2, cols)
	for k := f.KLo; k <= f.KHi; k++ {
		for d := 0; d < 2; d++ {
			if g.At(3+d, k) != f.At(3+d, k) {
				t.Fatalf("column roundtrip wrong at (%d,%d)", 3+d, k)
			}
		}
	}
	rows := packRows(f, -1, 3)
	h := NewField(-2, 10, -2, 8)
	unpackRows(h, -1, 3, rows)
	for d := 0; d < 3; d++ {
		for j := f.JLo; j <= f.JHi; j++ {
			if h.At(j, -1+d) != f.At(j, -1+d) {
				t.Fatalf("row roundtrip wrong at (%d,%d)", j, -1+d)
			}
		}
	}
}
