package cloverleaf

import (
	"runtime"
	"testing"
)

// TestThreadedBitwiseEquivalence: k-band threading must produce bitwise
// identical results to the serial execution (per-k arithmetic order is
// unchanged), the OpenMP-analogue property of the SPEChpc code.
func TestThreadedBitwiseEquivalence(t *testing.T) {
	cfg := Small(96, 12)
	serial := NewSerialRank(cfg)
	if _, err := serial.Run(); err != nil {
		t.Fatal(err)
	}

	for _, threads := range []int{2, 4, 7} {
		par := NewSerialRank(cfg)
		par.Chunk.SetThreads(threads)
		if _, err := par.Run(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		for i, v := range par.Chunk.Density0.V {
			if v != serial.Chunk.Density0.V[i] {
				t.Fatalf("threads=%d: density differs at %d: %g vs %g",
					threads, i, v, serial.Chunk.Density0.V[i])
			}
		}
		for i, v := range par.Chunk.XVel0.V {
			if v != serial.Chunk.XVel0.V[i] {
				t.Fatalf("threads=%d: xvel differs at %d", threads, i)
			}
		}
	}
}

// TestThreadedDtIdentical: the parallel minimum reduction must be exact.
func TestThreadedDtIdentical(t *testing.T) {
	cfg := Small(64, 1)
	a := NewSerialRank(cfg)
	b := NewSerialRank(cfg)
	b.Chunk.SetThreads(8)
	a.Chunk.IdealGas(false)
	a.Chunk.CalcViscosity()
	b.Chunk.IdealGas(false)
	b.Chunk.CalcViscosity()
	if da, db := a.Chunk.CalcDt(), b.Chunk.CalcDt(); da != db {
		t.Fatalf("threaded dt %g != serial %g", db, da)
	}
}

func TestSetThreads(t *testing.T) {
	c := NewChunk(Small(16, 1), 1, 16, 1, 16)
	if c.Threads() != 1 {
		t.Fatal("default must be serial")
	}
	c.SetThreads(4)
	if c.Threads() != 4 {
		t.Fatal("SetThreads lost")
	}
	c.SetThreads(-1)
	if c.Threads() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative should mean GOMAXPROCS")
	}
	c.SetThreads(0)
	if c.Threads() != 1 {
		t.Fatal("zero should mean serial")
	}
}

// TestParKCoverage: every k is visited exactly once, any band count.
func TestParKCoverage(t *testing.T) {
	c := NewChunk(Small(16, 1), 1, 16, 1, 16)
	for _, threads := range []int{1, 2, 3, 16, 64} {
		c.SetThreads(threads)
		var mu = make([]int32, 201)
		c.parK(-100, 100, func(k int) {
			mu[k+100]++
		})
		for i, n := range mu {
			if n != 1 {
				t.Fatalf("threads=%d: k=%d visited %d times", threads, i-100, n)
			}
		}
	}
}

// parK bands never overlap, so the int32 counters above are safe; this
// test double-checks with the race detector when enabled.
func TestParKEmptyRange(t *testing.T) {
	c := NewChunk(Small(16, 1), 1, 16, 1, 16)
	called := false
	c.parK(5, 4, func(k int) { called = true })
	if called {
		t.Fatal("empty range invoked the body")
	}
	if got := c.parKMin(5, 4, func(k int) float64 { return 0 }); got <= 1e300 {
		t.Fatal("empty parKMin should return +Inf")
	}
}
