package cloverleaf

import (
	"fmt"

	"cloversim/internal/trace"
)

// TrafficChunk mirrors a chunk's array geometry in the simulated address
// space of internal/trace, so the hotspot loops can be replayed through
// the cache simulator without executing physics.
type TrafficChunk struct {
	XMin, XMax, YMin, YMax int
	Arrays                 map[string]*trace.Array
}

// NewTrafficChunk allocates all CloverLeaf arrays for the local cell
// range [xmin..xmax] x [ymin..ymax]. If maxRows > 0, the y extent is
// truncated (traffic per iteration is row-count invariant once layer
// conditions are warm); aligned selects 64-byte array alignment
// (the ALIGN_ARRAYS build knob).
func NewTrafficChunk(xmin, xmax, ymin, ymax, maxRows int, aligned bool) *TrafficChunk {
	if maxRows > 0 && ymax-ymin+1 > maxRows {
		ymax = ymin + maxRows - 1
	}
	t := &TrafficChunk{XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax,
		Arrays: map[string]*trace.Array{}}
	ar := trace.NewArena(aligned)
	jl, jh := xmin-2, xmax+2
	kl, kh := ymin-2, ymax+2
	jhn, khn := xmax+3, ymax+3

	cell := func(name string) { t.Arrays[name] = ar.Alloc(name, jl, jh, kl, kh) }
	node := func(name string) { t.Arrays[name] = ar.Alloc(name, jl, jhn, kl, khn) }
	faceX := func(name string) { t.Arrays[name] = ar.Alloc(name, jl, jhn, kl, kh) }
	faceY := func(name string) { t.Arrays[name] = ar.Alloc(name, jl, jh, kl, khn) }

	for _, n := range []string{"density0", "density1", "energy0", "energy1",
		"pressure", "viscosity", "soundspeed", "volume"} {
		cell(n)
	}
	for _, n := range []string{"xvel0", "xvel1", "yvel0", "yvel1",
		"node_flux", "node_mass_post", "node_mass_pre", "mom_flux",
		"pre_vol", "post_vol", "ener_flux"} {
		node(n)
	}
	for _, n := range []string{"vol_flux_x", "mass_flux_x", "xarea"} {
		faceX(n)
	}
	for _, n := range []string{"vol_flux_y", "mass_flux_y", "yarea"} {
		faceY(n)
	}
	return t
}

// a returns the named array, panicking on typos (programming error).
func (t *TrafficChunk) a(name string) *trace.Array {
	arr, ok := t.Arrays[name]
	if !ok {
		panic(fmt.Sprintf("cloverleaf: unknown traffic array %q", name))
	}
	return arr
}

// LoopInstance binds one loop spec to its iteration space and call
// frequency within the hydro cycle.
type LoopInstance struct {
	Loop *trace.Loop
	// Bounds of one execution over this chunk.
	Bounds trace.Bounds
	// CallsPerStep is the average number of executions per hydro step
	// (direction-alternating sweeps average to halves).
	CallsPerStep float64
	// Kernel is the owning hotspot function (for the Listing 2 profile).
	Kernel string
	// Hotspot marks the 22 Table I loops.
	Hotspot bool
}

func rd(a *trace.Array, dj, dk int) trace.Access { return trace.Access{A: a, DJ: dj, DK: dk} }
func wr(a *trace.Array) trace.Write              { return trace.Write{A: a, NT: true} }
func wrUpd(a *trace.Array) trace.Write           { return trace.Write{A: a, Update: true} }

// HotspotLoops builds the 22 Table I loop instances for this chunk.
// The stencil offsets are chosen to reproduce the paper's element counts
// exactly (unit-tested against model.Table1); optimizeLoops restructures
// ac01/ac05 so SpecI2M recognizes their stores (Sec. V-B).
func (t *TrafficChunk) HotspotLoops(optimizeLoops bool) []LoopInstance {
	xm, xM, ym, yM := t.XMin, t.XMax, t.YMin, t.YMax
	full := trace.Bounds{JLo: xm - 2, JHi: xM + 2, KLo: ym - 2, KHi: yM + 2}
	inner := trace.Bounds{JLo: xm, JHi: xM, KLo: ym, KHi: yM}

	vol := t.a("volume")
	vfx, vfy := t.a("vol_flux_x"), t.a("vol_flux_y")
	mfx, mfy := t.a("mass_flux_x"), t.a("mass_flux_y")
	d1, e1 := t.a("density1"), t.a("energy1")
	nf, nmPost, nmPre := t.a("node_flux"), t.a("node_mass_post"), t.a("node_mass_pre")
	mflux := t.a("mom_flux")
	preV, postV, eflux := t.a("pre_vol"), t.a("post_vol"), t.a("ener_flux")
	vel := t.a("xvel1") // representative advected component
	d0, e0 := t.a("density0"), t.a("energy0")
	press, visc := t.a("pressure"), t.a("viscosity")
	xv0, yv0 := t.a("xvel0"), t.a("yvel0")
	xv1, yv1 := t.a("xvel1"), t.a("yvel1")
	xa, ya := t.a("xarea"), t.a("yarea")

	loops := []LoopInstance{
		// ---- advec_mom: volume construction (one variant per step) ----
		{Loop: &trace.Loop{Name: "am00", Eligible: true, FlopsPerIt: 4,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfy, 0, 0), rd(vfy, 0, 1), rd(vfx, 0, 0), rd(vfx, 1, 0)},
			Writes: []trace.Write{wr(postV), wr(preV)},
		}, Bounds: full, CallsPerStep: 1, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am01", Eligible: true, FlopsPerIt: 4,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfx, 0, 0), rd(vfx, 1, 0), rd(vfy, 0, 0), rd(vfy, 0, 1)},
			Writes: []trace.Write{wr(postV), wr(preV)},
		}, Bounds: full, CallsPerStep: 1, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am02", Eligible: true, FlopsPerIt: 2,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfy, 0, 0), rd(vfy, 0, 1)},
			Writes: []trace.Write{wr(postV), wr(preV)},
		}, Bounds: full, CallsPerStep: 1, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am03", Eligible: true, FlopsPerIt: 2,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfx, 0, 0), rd(vfx, 1, 0)},
			Writes: []trace.Write{wr(postV), wr(preV)},
		}, Bounds: full, CallsPerStep: 1, Kernel: "advec_mom_kernel", Hotspot: true},

		// ---- advec_mom x sweep (2 velocity components per step) ----
		{Loop: &trace.Loop{Name: "am04", Eligible: true, FlopsPerIt: 4,
			Reads:  []trace.Access{rd(mfx, 0, -1), rd(mfx, 0, 0), rd(mfx, 1, -1), rd(mfx, 1, 0)},
			Writes: []trace.Write{wr(nf)},
		}, Bounds: trace.Bounds{JLo: xm - 2, JHi: xM + 2, KLo: ym, KHi: yM + 1},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am05", Eligible: true, FlopsPerIt: 10,
			Reads: []trace.Access{rd(d1, 0, -1), rd(d1, 0, 0), rd(d1, -1, -1), rd(d1, -1, 0),
				rd(postV, 0, -1), rd(postV, 0, 0), rd(postV, -1, -1), rd(postV, -1, 0),
				rd(nf, -1, 0), rd(nf, 0, 0)},
			Writes: []trace.Write{wr(nmPost), wr(nmPre)},
		}, Bounds: trace.Bounds{JLo: xm - 1, JHi: xM + 2, KLo: ym, KHi: yM + 1},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am06", Eligible: true, FlopsPerIt: 9,
			Reads: []trace.Access{rd(nf, 0, 0), rd(nmPre, 0, 0), rd(nmPre, 1, 0),
				rd(vel, -1, 0), rd(vel, 0, 0), rd(vel, 1, 0), rd(vel, 2, 0)},
			Writes: []trace.Write{wr(mflux)},
		}, Bounds: trace.Bounds{JLo: xm - 1, JHi: xM + 1, KLo: ym, KHi: yM + 1},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am07", Eligible: true, FlopsPerIt: 4,
			Reads: []trace.Access{rd(vel, 0, 0), rd(nmPre, 0, 0),
				rd(mflux, -1, 0), rd(mflux, 0, 0), rd(nmPost, 0, 0)},
			Writes: []trace.Write{wrUpd(vel)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym, KHi: yM + 1},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},

		// ---- advec_mom y sweep ----
		{Loop: &trace.Loop{Name: "am08", Eligible: true, FlopsPerIt: 4,
			Reads:  []trace.Access{rd(mfy, -1, 0), rd(mfy, 0, 0), rd(mfy, -1, 1), rd(mfy, 0, 1)},
			Writes: []trace.Write{wr(nf)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym - 2, KHi: yM + 2},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am09", Eligible: true, FlopsPerIt: 10,
			Reads: []trace.Access{rd(d1, 0, -1), rd(d1, 0, 0), rd(d1, -1, -1), rd(d1, -1, 0),
				rd(postV, 0, -1), rd(postV, 0, 0), rd(postV, -1, -1), rd(postV, -1, 0),
				rd(nf, 0, -1), rd(nf, 0, 0)},
			Writes: []trace.Write{wr(nmPost), wr(nmPre)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym - 1, KHi: yM + 2},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am10", Eligible: true, FlopsPerIt: 8,
			Reads: []trace.Access{rd(nf, 0, 0), rd(nmPre, 0, 0),
				rd(vel, 0, 0), rd(vel, 0, 1), rd(vel, 0, 2)},
			Writes: []trace.Write{wr(mflux)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym - 1, KHi: yM + 1},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "am11", Eligible: true, FlopsPerIt: 4,
			Reads: []trace.Access{rd(vel, 0, 0), rd(nmPre, 0, 0),
				rd(mflux, 0, -1), rd(mflux, 0, 0), rd(nmPost, 0, 0)},
			Writes: []trace.Write{wrUpd(vel)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym, KHi: yM + 1},
			CallsPerStep: 2, Kernel: "advec_mom_kernel", Hotspot: true},

		// ---- advec_cell x sweep ----
		{Loop: &trace.Loop{Name: "ac00", Eligible: true, FlopsPerIt: 6,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfx, 0, 0), rd(vfx, 1, 0), rd(vfy, 0, 0), rd(vfy, 0, 1)},
			Writes: []trace.Write{wr(preV), wr(postV)},
		}, Bounds: full, CallsPerStep: 0.5, Kernel: "advec_cell_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "ac01", Eligible: optimizeLoops, FlopsPerIt: 2,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfx, 0, 0), rd(vfx, 1, 0)},
			Writes: []trace.Write{wr(preV), wr(postV)},
		}, Bounds: full, CallsPerStep: 0.5, Kernel: "advec_cell_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "ac02", Eligible: false, FlopsPerIt: 17,
			Reads: []trace.Access{rd(vfx, 0, 0), rd(preV, -1, 0), rd(preV, 0, 0),
				rd(d1, -2, 0), rd(d1, -1, 0), rd(d1, 0, 0), rd(d1, 1, 0),
				rd(e1, -2, 0), rd(e1, -1, 0), rd(e1, 0, 0), rd(e1, 1, 0)},
			Writes: []trace.Write{wr(mfx), wr(eflux)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 2, KLo: ym, KHi: yM},
			CallsPerStep: 1, Kernel: "advec_cell_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "ac03", Eligible: true, FlopsPerIt: 10,
			Reads: []trace.Access{rd(d1, 0, 0), rd(e1, 0, 0), rd(preV, 0, 0),
				rd(mfx, 0, 0), rd(mfx, 1, 0), rd(eflux, 0, 0), rd(eflux, 1, 0),
				rd(vfx, 0, 0), rd(vfx, 1, 0)},
			Writes: []trace.Write{wrUpd(d1), wrUpd(e1)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "advec_cell_kernel", Hotspot: true},

		// ---- advec_cell y sweep ----
		{Loop: &trace.Loop{Name: "ac04", Eligible: true, FlopsPerIt: 6,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfy, 0, 0), rd(vfy, 0, 1), rd(vfx, 0, 0), rd(vfx, 1, 0)},
			Writes: []trace.Write{wr(preV), wr(postV)},
		}, Bounds: full, CallsPerStep: 0.5, Kernel: "advec_cell_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "ac05", Eligible: optimizeLoops, FlopsPerIt: 2,
			Reads:  []trace.Access{rd(vol, 0, 0), rd(vfy, 0, 0), rd(vfy, 0, 1)},
			Writes: []trace.Write{wr(preV), wr(postV)},
		}, Bounds: full, CallsPerStep: 0.5, Kernel: "advec_cell_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "ac06", Eligible: false, FlopsPerIt: 17,
			Reads: []trace.Access{rd(vfy, 0, 0), rd(preV, 0, 0),
				rd(d1, 0, -1), rd(d1, 0, 0), rd(d1, 0, 1),
				rd(e1, 0, -1), rd(e1, 0, 0), rd(e1, 0, 1)},
			Writes: []trace.Write{wr(mfy), wr(eflux)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM, KLo: ym, KHi: yM + 2},
			CallsPerStep: 1, Kernel: "advec_cell_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "ac07", Eligible: true, FlopsPerIt: 10,
			Reads: []trace.Access{rd(d1, 0, 0), rd(e1, 0, 0), rd(preV, 0, 0),
				rd(mfy, 0, 0), rd(mfy, 0, 1), rd(eflux, 0, 0), rd(eflux, 0, 1),
				rd(vfy, 0, 0), rd(vfy, 0, 1)},
			Writes: []trace.Write{wrUpd(d1), wrUpd(e1)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "advec_cell_kernel", Hotspot: true},

		// ---- PdV predictor / corrector ----
		{Loop: &trace.Loop{Name: "pdv00", Eligible: true, FlopsPerIt: 49,
			Reads: []trace.Access{rd(xa, 0, 0), rd(xa, 1, 0),
				rd(ya, 0, 0), rd(ya, 0, 1),
				rd(vol, 0, 0), rd(press, 0, 0), rd(visc, 0, 0),
				rd(d0, 0, 0), rd(e0, 0, 0),
				rd(xv0, 0, 0), rd(xv0, 0, 1), rd(xv0, 1, 0), rd(xv0, 1, 1),
				rd(yv0, 0, 0), rd(yv0, 0, 1), rd(yv0, 1, 0), rd(yv0, 1, 1)},
			Writes: []trace.Write{wr(d1), wr(e1)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "pdv_kernel", Hotspot: true},
		{Loop: &trace.Loop{Name: "pdv01", Eligible: true, FlopsPerIt: 45,
			Reads: []trace.Access{rd(xa, 0, 0), rd(xa, 1, 0),
				rd(ya, 0, 0), rd(ya, 0, 1),
				rd(vol, 0, 0), rd(press, 0, 0), rd(visc, 0, 0),
				rd(d0, 0, 0), rd(e0, 0, 0),
				rd(xv0, 0, 0), rd(xv0, 0, 1), rd(xv0, 1, 0), rd(xv0, 1, 1),
				rd(yv0, 0, 0), rd(yv0, 0, 1), rd(yv0, 1, 0), rd(yv0, 1, 1),
				rd(xv1, 0, 0), rd(xv1, 0, 1), rd(xv1, 1, 0), rd(xv1, 1, 1),
				rd(yv1, 0, 0), rd(yv1, 0, 1), rd(yv1, 1, 0), rd(yv1, 1, 1)},
			Writes: []trace.Write{wr(d1), wr(e1)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "pdv_kernel", Hotspot: true},
	}
	return loops
}

// AuxLoops builds traffic specs for the non-hotspot kernels so the full
// application profile (Listing 2) and node bandwidth (Fig. 2) include
// the remaining ~31% of the runtime.
func (t *TrafficChunk) AuxLoops() []LoopInstance {
	xm, xM, ym, yM := t.XMin, t.XMax, t.YMin, t.YMax
	inner := trace.Bounds{JLo: xm, JHi: xM, KLo: ym, KHi: yM}
	nodes := trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym, KHi: yM + 1}

	d0, e0 := t.a("density0"), t.a("energy0")
	d1, e1 := t.a("density1"), t.a("energy1")
	press, visc, ss := t.a("pressure"), t.a("viscosity"), t.a("soundspeed")
	vol := t.a("volume")
	xv0, yv0 := t.a("xvel0"), t.a("yvel0")
	xv1, yv1 := t.a("xvel1"), t.a("yvel1")
	xa, ya := t.a("xarea"), t.a("yarea")
	vfx, vfy := t.a("vol_flux_x"), t.a("vol_flux_y")

	return []LoopInstance{
		{Loop: &trace.Loop{Name: "ideal_gas", Eligible: true, FlopsPerIt: 11,
			Reads:  []trace.Access{rd(d0, 0, 0), rd(e0, 0, 0)},
			Writes: []trace.Write{wr(press), wr(ss)},
		}, Bounds: inner, CallsPerStep: 2, Kernel: "ideal_gas_kernel"},
		{Loop: &trace.Loop{Name: "viscosity", Eligible: true, FlopsPerIt: 35,
			Reads: []trace.Access{rd(d0, 0, 0),
				rd(press, -1, 0), rd(press, 0, 0), rd(press, 1, 0), rd(press, 0, -1), rd(press, 0, 1),
				rd(xv0, 0, 0), rd(xv0, 1, 0), rd(xv0, 0, 1), rd(xv0, 1, 1),
				rd(yv0, 0, 0), rd(yv0, 1, 0), rd(yv0, 0, 1), rd(yv0, 1, 1)},
			Writes: []trace.Write{wr(visc)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "viscosity_kernel"},
		{Loop: &trace.Loop{Name: "calc_dt", Eligible: true, FlopsPerIt: 40,
			Reads: []trace.Access{rd(ss, 0, 0), rd(visc, 0, 0), rd(d0, 0, 0), rd(vol, 0, 0),
				rd(xv0, 0, 0), rd(xv0, 1, 0), rd(xv0, 0, 1), rd(xv0, 1, 1),
				rd(yv0, 0, 0), rd(yv0, 1, 0), rd(yv0, 0, 1), rd(yv0, 1, 1)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "calc_dt_kernel"},
		{Loop: &trace.Loop{Name: "accelerate", Eligible: true, FlopsPerIt: 33,
			Reads: []trace.Access{
				rd(d0, -1, -1), rd(d0, 0, -1), rd(d0, -1, 0), rd(d0, 0, 0),
				rd(vol, -1, -1), rd(vol, 0, -1), rd(vol, -1, 0), rd(vol, 0, 0),
				rd(press, -1, -1), rd(press, 0, -1), rd(press, -1, 0), rd(press, 0, 0),
				rd(visc, -1, -1), rd(visc, 0, -1), rd(visc, -1, 0), rd(visc, 0, 0),
				rd(xa, 0, -1), rd(xa, 0, 0), rd(ya, -1, 0), rd(ya, 0, 0),
				rd(xv0, 0, 0), rd(yv0, 0, 0)},
			Writes: []trace.Write{wr(xv1), wr(yv1)},
		}, Bounds: nodes, CallsPerStep: 1, Kernel: "accelerate_kernel"},
		{Loop: &trace.Loop{Name: "flux_calc_x", Eligible: true, FlopsPerIt: 5,
			Reads: []trace.Access{rd(xa, 0, 0),
				rd(xv0, 0, 0), rd(xv0, 0, 1), rd(xv1, 0, 0), rd(xv1, 0, 1)},
			Writes: []trace.Write{wr(vfx)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM + 1, KLo: ym, KHi: yM},
			CallsPerStep: 1, Kernel: "flux_calc_kernel"},
		{Loop: &trace.Loop{Name: "flux_calc_y", Eligible: true, FlopsPerIt: 5,
			Reads: []trace.Access{rd(ya, 0, 0),
				rd(yv0, 0, 0), rd(yv0, 1, 0), rd(yv1, 0, 0), rd(yv1, 1, 0)},
			Writes: []trace.Write{wr(vfy)},
		}, Bounds: trace.Bounds{JLo: xm, JHi: xM, KLo: ym, KHi: yM + 1},
			CallsPerStep: 1, Kernel: "flux_calc_kernel"},
		{Loop: &trace.Loop{Name: "reset_field_cell", Eligible: true, FlopsPerIt: 0,
			Reads:  []trace.Access{rd(d1, 0, 0), rd(e1, 0, 0)},
			Writes: []trace.Write{wr(d0), wr(e0)},
		}, Bounds: inner, CallsPerStep: 1, Kernel: "reset_field_kernel"},
		{Loop: &trace.Loop{Name: "reset_field_node", Eligible: true, FlopsPerIt: 0,
			Reads:  []trace.Access{rd(xv1, 0, 0), rd(yv1, 0, 0)},
			Writes: []trace.Write{wr(xv0), wr(yv0)},
		}, Bounds: nodes, CallsPerStep: 1, Kernel: "reset_field_kernel"},
	}
}
