package cloverleaf

import (
	"fmt"
	"math"

	"cloversim/internal/decomp"
	"cloversim/internal/mpi"
)

// Rank couples a chunk with its communicator and neighbor topology.
// A nil Comm means a serial (single-chunk) run.
type Rank struct {
	Chunk *Chunk
	Comm  *mpi.Comm
	Nbr   Neighbors
	// dt of the previous step, for the rise limiter.
	dtOld float64
	// simTime is the accumulated simulated time.
	simTime float64
	cfg     Config
}

// Time returns the accumulated simulated time.
func (r *Rank) Time() float64 { return r.simTime }

// NewSerialRank builds a single-chunk solver over the whole mesh.
func NewSerialRank(cfg Config) *Rank {
	return &Rank{
		Chunk: NewChunk(cfg, 1, cfg.GridX, 1, cfg.GridY),
		Nbr:   Neighbors{-1, -1, -1, -1},
		dtOld: cfg.DtInit,
		cfg:   cfg,
	}
}

// NewMPIRank builds the rank's chunk from the decomposition.
func NewMPIRank(cfg Config, comm *mpi.Comm, subs []decomp.Subdomain) *Rank {
	s := subs[comm.Rank()]
	cx, _ := decomp.Factorize(comm.Size(), cfg.GridX, cfg.GridY)
	cy := comm.Size() / cx
	l, r, b, t := decomp.Neighbors(s, cx, cy)
	return &Rank{
		Chunk: NewChunk(cfg, s.XMin, s.XMax, s.YMin, s.YMax),
		Comm:  comm,
		Nbr:   Neighbors{l, r, b, t},
		dtOld: cfg.DtInit,
		cfg:   cfg,
	}
}

// halo runs the appropriate halo update.
func (r *Rank) halo(fields []HaloField, depth int) error {
	if r.Comm == nil || r.Comm.Size() == 1 {
		r.Chunk.UpdateHaloSerial(fields, depth)
		return nil
	}
	return r.Chunk.UpdateHaloMPI(r.Comm, r.Nbr, fields, depth)
}

// allreduceMin reduces the timestep across ranks.
func (r *Rank) allreduceMin(v float64) float64 {
	if r.Comm == nil || r.Comm.Size() == 1 {
		return v
	}
	return r.Comm.AllreduceScalar(v, mpi.OpMin)
}

// Step advances one full hydro cycle and returns the timestep used.
// The structure follows hydro.f90: timestep -> PdV(predict) -> accelerate
// -> PdV(correct) -> flux_calc -> advection (direction-alternating
// sweeps) -> reset_field.
func (r *Rank) Step(step int) (float64, error) {
	c := r.Chunk

	// --- timestep ---
	c.IdealGas(false)
	if err := r.halo([]HaloField{
		{c.Pressure, KindCell}, {c.Energy0, KindCell}, {c.Density0, KindCell},
		{c.XVel0, KindNodeX}, {c.YVel0, KindNodeY},
	}, 2); err != nil {
		return 0, err
	}
	c.CalcViscosity()
	if err := r.halo([]HaloField{{c.Viscosity, KindCell}}, 1); err != nil {
		return 0, err
	}
	dt := math.Min(c.CalcDt(), math.Min(r.dtOld*r.cfg.DtRise, r.cfg.DtMax))
	dt = r.allreduceMin(dt)
	if dt <= 0 || math.IsNaN(dt) {
		return 0, fmt.Errorf("cloverleaf: step %d produced invalid dt %g", step, dt)
	}
	r.dtOld = dt
	if r.cfg.EndTime > 0 && r.simTime+dt > r.cfg.EndTime {
		dt = r.cfg.EndTime - r.simTime
	}

	// --- Lagrangian phase ---
	c.PdV(true, dt)
	c.IdealGas(true)
	if err := r.halo([]HaloField{{c.Pressure, KindCell}}, 1); err != nil {
		return 0, err
	}
	c.Accelerate(dt)
	if err := r.halo([]HaloField{{c.XVel1, KindNodeX}, {c.YVel1, KindNodeY}}, 1); err != nil {
		return 0, err
	}
	c.PdV(false, dt)

	// --- advection phase ---
	c.FluxCalc(dt)
	if err := r.halo([]HaloField{
		{c.VolFluxX, KindFluxX}, {c.VolFluxY, KindFluxY},
		{c.Density1, KindCell}, {c.Energy1, KindCell},
	}, 2); err != nil {
		return 0, err
	}

	xFirst := step%2 == 1 // alternate sweep direction per step
	if xFirst {
		c.AdvecCellX(1)
		if err := r.halo([]HaloField{
			{c.Density1, KindCell}, {c.Energy1, KindCell}, {c.MassFluxX, KindFluxX},
		}, 2); err != nil {
			return 0, err
		}
		c.AdvecMomX(c.XVel1, 1)
		c.AdvecMomX(c.YVel1, 1)
		c.AdvecCellY(2)
		if err := r.halo([]HaloField{
			{c.Density1, KindCell}, {c.Energy1, KindCell}, {c.MassFluxY, KindFluxY},
			{c.XVel1, KindNodeX}, {c.YVel1, KindNodeY},
		}, 2); err != nil {
			return 0, err
		}
		c.AdvecMomY(c.XVel1, 4)
		c.AdvecMomY(c.YVel1, 4)
	} else {
		c.AdvecCellY(1)
		if err := r.halo([]HaloField{
			{c.Density1, KindCell}, {c.Energy1, KindCell}, {c.MassFluxY, KindFluxY},
		}, 2); err != nil {
			return 0, err
		}
		c.AdvecMomY(c.XVel1, 2)
		c.AdvecMomY(c.YVel1, 2)
		c.AdvecCellX(2)
		if err := r.halo([]HaloField{
			{c.Density1, KindCell}, {c.Energy1, KindCell}, {c.MassFluxX, KindFluxX},
			{c.XVel1, KindNodeX}, {c.YVel1, KindNodeY},
		}, 2); err != nil {
			return 0, err
		}
		c.AdvecMomX(c.XVel1, 3)
		c.AdvecMomX(c.YVel1, 3)
	}

	c.ResetField()
	r.simTime += dt
	return dt, nil
}

// Run advances the configured number of steps and returns the final
// summary (reduced across ranks when parallel).
func (r *Rank) Run() (Summary, error) {
	for step := 1; step <= r.cfg.EndStep; step++ {
		if _, err := r.Step(step); err != nil {
			return Summary{}, err
		}
		if r.cfg.EndTime > 0 && r.simTime >= r.cfg.EndTime-1e-15 {
			break
		}
	}
	return r.GlobalSummary(), nil
}

// GlobalSummary reduces the field summary across ranks.
func (r *Rank) GlobalSummary() Summary {
	r.Chunk.IdealGas(false)
	s := r.Chunk.FieldSummary()
	if r.Comm == nil || r.Comm.Size() == 1 {
		return s
	}
	v := r.Comm.Allreduce([]float64{s.Volume, s.Mass, s.InternalEnergy, s.KineticEnergy, s.Pressure}, mpi.OpSum)
	return Summary{Volume: v[0], Mass: v[1], InternalEnergy: v[2], KineticEnergy: v[3], Pressure: v[4]}
}

// RunSerial is a convenience wrapper: run cfg on one chunk.
func RunSerial(cfg Config) (Summary, error) {
	if err := cfg.Validate(); err != nil {
		return Summary{}, err
	}
	return NewSerialRank(cfg).Run()
}

// RunMPI runs cfg over n in-process ranks and returns the global summary
// plus the per-rank modeled MPI times.
func RunMPI(cfg Config, n int) (Summary, []mpi.Times, error) {
	return RunMPIThreaded(cfg, n, 1)
}

// RunMPIThreaded is RunMPI with OpenMP-style kernel threading per rank
// (the hybrid MPI+OpenMP mode of the SPEChpc code).
func RunMPIThreaded(cfg Config, n, threads int) (Summary, []mpi.Times, error) {
	if err := cfg.Validate(); err != nil {
		return Summary{}, nil, err
	}
	subs := decomp.Decompose(n, cfg.GridX, cfg.GridY)
	world := mpi.NewWorld(n, mpi.DefaultTimeModel())
	var summary Summary
	var firstErr error
	comms := world.Run(func(comm *mpi.Comm) {
		rank := NewMPIRank(cfg, comm, subs)
		rank.Chunk.SetThreads(threads)
		s, err := rank.Run()
		if comm.Rank() == 0 {
			summary = s
			firstErr = err
		}
	})
	times := make([]mpi.Times, n)
	for i, cm := range comms {
		times[i] = cm.Times
	}
	return summary, times, firstErr
}
