package cloverleaf

import (
	"strings"
	"testing"
)

const sampleDeck = `
*clover
 ! SPEChpc-style input deck
 state 1 density=0.2 energy=1.0
 state 2 density=1.0 energy=2.5 geometry=rectangle xmin=0.0 xmax=5.0 ymin=0.0 ymax=2.0

 x_cells=960
 y_cells=960

 xmin=0.0
 ymin=0.0
 xmax=10.0
 ymax=10.0

 initial_timestep=0.04
 max_timestep=0.04
 end_step=87
 test_problem 2
*endclover
`

func TestParseDeck(t *testing.T) {
	cfg, err := ParseDeck(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GridX != 960 || cfg.GridY != 960 || cfg.EndStep != 87 {
		t.Fatalf("parsed %dx%d, %d steps", cfg.GridX, cfg.GridY, cfg.EndStep)
	}
	if cfg.XMax != 10 || cfg.YMax != 10 {
		t.Fatalf("domain %g x %g", cfg.XMax, cfg.YMax)
	}
	if len(cfg.States) != 2 {
		t.Fatalf("%d states", len(cfg.States))
	}
	if cfg.States[0].Density != 0.2 || cfg.States[0].Energy != 1.0 {
		t.Errorf("background state %+v", cfg.States[0])
	}
	s2 := cfg.States[1]
	if s2.Density != 1.0 || s2.Energy != 2.5 || s2.XMax != 5 || s2.YMax != 2 {
		t.Errorf("state 2 %+v", s2)
	}
	if cfg.DtInit != 0.04 || cfg.DtRise != 1.5 {
		t.Errorf("timestep params %g %g", cfg.DtInit, cfg.DtRise)
	}
}

func TestParseDeckErrors(t *testing.T) {
	cases := map[string]string{
		"no states":      "*clover\n x_cells=10\n y_cells=10\n xmax=1\n ymax=1\n end_step=1\n*endclover\n",
		"missing state":  "*clover\n state 2 density=1 energy=1\n x_cells=10\n y_cells=10\n xmax=1\n ymax=1\n end_step=1\n*endclover\n",
		"bad geometry":   "*clover\n state 1 density=1 energy=1\n state 2 density=1 energy=1 geometry=circle\n x_cells=10\n y_cells=10\n xmax=1\n ymax=1\n end_step=1\n*endclover\n",
		"bad number":     "*clover\n state 1 density=abc energy=1\n x_cells=10\n y_cells=10\n xmax=1\n ymax=1\n end_step=1\n*endclover\n",
		"invalid config": "*clover\n state 1 density=1 energy=1\n x_cells=10\n y_cells=10\n xmax=1\n ymax=1\n end_step=0\n*endclover\n",
	}
	for name, deck := range cases {
		if _, err := ParseDeck(strings.NewReader(deck)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDeckIgnoresOutsideBlock(t *testing.T) {
	deck := "x_cells=99\n" + sampleDeck
	cfg, err := ParseDeck(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GridX != 960 {
		t.Errorf("directive outside *clover block applied: %d", cfg.GridX)
	}
}

func TestDeckRoundTrip(t *testing.T) {
	orig, err := ParseDeck(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeck(strings.NewReader(FormatDeck(orig)))
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, FormatDeck(orig))
	}
	if back.GridX != orig.GridX || back.EndStep != orig.EndStep ||
		len(back.States) != len(orig.States) || back.States[1] != orig.States[1] {
		t.Errorf("round trip changed config:\n%+v\n%+v", orig, back)
	}
}

func TestDeckRuns(t *testing.T) {
	// A parsed deck must actually simulate.
	deck := strings.Replace(sampleDeck, "x_cells=960", "x_cells=24", 1)
	deck = strings.Replace(deck, "y_cells=960", "y_cells=24", 1)
	deck = strings.Replace(deck, "end_step=87", "end_step=3", 1)
	cfg, err := ParseDeck(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mass <= 0 {
		t.Fatalf("deck run produced mass %g", s.Mass)
	}
}
