package cloverleaf

import (
	"testing"

	"cloversim/internal/machine"
)

func modelFor(t *testing.T, ranks int) *NodeModel {
	t.Helper()
	m, err := ModelNode(TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: ranks, MaxRows: 24, AlignArrays: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelNodeBasics(t *testing.T) {
	m := modelFor(t, 1)
	if m.StepSeconds <= 0 || m.TotalStepSeconds < m.StepSeconds {
		t.Fatalf("times: %+v", m)
	}
	if m.MPIPerStep.Total() != 0 {
		t.Error("serial run charged MPI time")
	}
	// Serial achieved bandwidth is bounded by one core's bandwidth.
	if m.BandwidthBytes > machine.ICX8360Y().Mem.CoreBandwidth*1.01 {
		t.Errorf("serial bandwidth %.1f GB/s exceeds core limit", m.BandwidthBytes/1e9)
	}
}

// TestBandwidthSaturation: achieved node bandwidth saturates within the
// first ccNUMA domain (Fig. 2) at the domain limit.
func TestBandwidthSaturation(t *testing.T) {
	spec := machine.ICX8360Y()
	b9 := modelFor(t, 9).BandwidthBytes
	b18 := modelFor(t, 18).BandwidthBytes
	if b9 < spec.Mem.DomainBandwidth*0.95 {
		t.Errorf("9 cores reach only %.0f GB/s, want near %.0f",
			b9/1e9, spec.Mem.DomainBandwidth/1e9)
	}
	if b18 > spec.Mem.DomainBandwidth*1.05 {
		t.Errorf("18 cores exceed the domain bandwidth: %.0f GB/s", b18/1e9)
	}
}

// TestSpeedupKeepsRisingAfterSaturation: the paper's observation that
// speedup rises beyond bandwidth saturation because WA evasion improves.
func TestSpeedupKeepsRisingAfterSaturation(t *testing.T) {
	t9 := modelFor(t, 9).TotalStepSeconds
	t18 := modelFor(t, 18).TotalStepSeconds
	if t18 >= t9 {
		t.Errorf("18-core step (%.4gs) not faster than 9-core (%.4gs) despite evasion", t18, t9)
	}
}

// TestPrimeSlowdown: prime rank counts are slower than their non-prime
// neighbors, without a bandwidth drop (the Fig. 2 signature).
func TestPrimeSlowdown(t *testing.T) {
	m71 := modelFor(t, 71)
	m72 := modelFor(t, 72)
	if m71.TotalStepSeconds <= m72.TotalStepSeconds {
		t.Errorf("71 ranks (%.4gs) not slower than 72 (%.4gs)",
			m71.TotalStepSeconds, m72.TotalStepSeconds)
	}
	// Bandwidth must NOT drop at the prime count (both saturated).
	if m71.BandwidthBytes < m72.BandwidthBytes*0.93 {
		t.Errorf("bandwidth dropped at the prime count: %.0f vs %.0f GB/s",
			m71.BandwidthBytes/1e9, m72.BandwidthBytes/1e9)
	}
}

// TestProfileHotspots: Listing 2 — advec_mom > advec_cell > pdv, and the
// three together take about 69% of the runtime (paper: 67.5-69.2% across
// all rank counts).
func TestProfileHotspots(t *testing.T) {
	for _, ranks := range []int{1, 18, 72} {
		m := modelFor(t, ranks)
		ks := m.KernelSeconds
		am, ac, pdv := ks["advec_mom_kernel"], ks["advec_cell_kernel"], ks["pdv_kernel"]
		if !(am > ac && ac > pdv) {
			t.Errorf("ranks=%d: hotspot order wrong: am=%g ac=%g pdv=%g", ranks, am, ac, pdv)
		}
		var total float64
		for _, v := range ks {
			total += v
		}
		share := (am + ac + pdv) / total
		if share < 0.60 || share < 0 || share > 0.80 {
			t.Errorf("ranks=%d: hotspot share %.1f%%, paper says ~69%%", ranks, 100*share)
		}
	}
}

// TestMPIShares: Fig. 4 — serial share stays in the 94-99% band and
// Waitall dominates the MPI time; prime counts spend relatively more in
// MPI than their neighbors.
func TestMPIShares(t *testing.T) {
	for _, ranks := range []int{2, 18, 38, 72} {
		m := modelFor(t, ranks)
		serial := m.SerialShare()
		if serial < 0.90 || serial > 0.999 {
			t.Errorf("ranks=%d: serial share %.3f outside the Fig. 4 band", ranks, serial)
		}
		mp := m.MPIPerStep
		if mp.Waitall <= mp.Allreduce {
			t.Errorf("ranks=%d: Waitall (%.3g) should dominate Allreduce (%.3g)",
				ranks, mp.Waitall, mp.Allreduce)
		}
	}
	// 1D decompositions exchange bigger (full-row) halos per rank.
	m19 := modelFor(t, 19)
	m18 := modelFor(t, 18)
	if m19.MPIPerStep.Waitall <= m18.MPIPerStep.Waitall {
		t.Errorf("1D halo exchange at 19 ranks (%.3g) should exceed 18 ranks (%.3g)",
			m19.MPIPerStep.Waitall, m18.MPIPerStep.Waitall)
	}
}

// TestScalingCurveMonotonicOverall: speedup grows from 1 to >30 over the
// node and is 1.0 serially.
func TestScalingCurve(t *testing.T) {
	pts, err := ScalingCurve(TrafficOptions{
		Machine: machine.ICX8360Y(), MaxRows: 16, AlignArrays: true, HotspotOnly: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Errorf("serial speedup = %g", pts[0].Speedup)
	}
	if pts[3].Speedup < 3 {
		t.Errorf("4-core speedup = %g, want near 4", pts[3].Speedup)
	}
	if !pts[2].Prime || pts[3].Prime {
		t.Error("prime flags wrong")
	}
}
