package cloverleaf

import "math"

// Direction selects the advection sweep direction.
type Direction int

const (
	DirX Direction = iota + 1
	DirY
)

// sign mirrors Fortran SIGN(1.0, x).
func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

const oneBySix = 1.0 / 6.0

// AdvecCellX performs the x-direction cell-centered advection
// (advec_cell_kernel, g_xdir). sweepNumber is 1 or 2.
//
// Loop labels in comments refer to the paper's Table I regions.
func (c *Chunk) AdvecCellX(sweepNumber int) {
	if sweepNumber == 1 {
		// ac00: both flux directions contribute to pre_vol.
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				pv := c.Volume.At(j, k) + (c.VolFluxX.At(j+1, k) - c.VolFluxX.At(j, k) +
					c.VolFluxY.At(j, k+1) - c.VolFluxY.At(j, k))
				c.PreVol.Set(j, k, pv)
				c.PostVol.Set(j, k, pv-(c.VolFluxX.At(j+1, k)-c.VolFluxX.At(j, k)))
			}
		})
	} else {
		// ac01: the simple copy-and-update loop the paper highlights as
		// SpecI2M-ineligible on ICX until restructured.
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				c.PreVol.Set(j, k, c.Volume.At(j, k)+c.VolFluxX.At(j+1, k)-c.VolFluxX.At(j, k))
				c.PostVol.Set(j, k, c.Volume.At(j, k))
			}
		})
	}

	// ac02: donor-cell mass and energy fluxes with van Leer limiting.
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax+2; j++ {
			var upwind, donor, downwind, dif int
			if c.VolFluxX.At(j, k) > 0 {
				upwind, donor, downwind, dif = j-2, j-1, j, j-1
			} else {
				upwind, donor, downwind, dif = min(j+1, c.XMax+2), j, j-1, j
			}

			sigmat := math.Abs(c.VolFluxX.At(j, k)) / c.PreVol.At(donor, k)
			sigma3 := (1 + sigmat) * (c.VertexDX.At(j) / c.VertexDX.At(dif))
			sigma4 := 2 - sigmat

			diffuw := c.Density1.At(donor, k) - c.Density1.At(upwind, k)
			diffdw := c.Density1.At(downwind, k) - c.Density1.At(donor, k)
			limiter := 0.0
			if diffuw*diffdw > 0 {
				limiter = (1 - sigmat) * sign(diffdw) *
					math.Min(math.Abs(diffuw), math.Min(math.Abs(diffdw),
						oneBySix*(sigma3*math.Abs(diffuw)+sigma4*math.Abs(diffdw))))
			}
			c.MassFluxX.Set(j, k, c.VolFluxX.At(j, k)*(c.Density1.At(donor, k)+limiter))

			sigmam := math.Abs(c.MassFluxX.At(j, k)) / (c.Density1.At(donor, k) * c.PreVol.At(donor, k))
			diffuw = c.Energy1.At(donor, k) - c.Energy1.At(upwind, k)
			diffdw = c.Energy1.At(downwind, k) - c.Energy1.At(donor, k)
			limiter = 0
			if diffuw*diffdw > 0 {
				limiter = (1 - sigmam) * sign(diffdw) *
					math.Min(math.Abs(diffuw), math.Min(math.Abs(diffdw),
						oneBySix*(sigma3*math.Abs(diffuw)+sigma4*math.Abs(diffdw))))
			}
			c.EnerFlux.Set(j, k, c.MassFluxX.At(j, k)*(c.Energy1.At(donor, k)+limiter))
		}
	})

	// ac03: conservative update of density and energy.
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			preMass := c.Density1.At(j, k) * c.PreVol.At(j, k)
			postMass := preMass + c.MassFluxX.At(j, k) - c.MassFluxX.At(j+1, k)
			postEner := (c.Energy1.At(j, k)*preMass + c.EnerFlux.At(j, k) - c.EnerFlux.At(j+1, k)) / postMass
			advecVol := c.PreVol.At(j, k) + c.VolFluxX.At(j, k) - c.VolFluxX.At(j+1, k)
			c.Density1.Set(j, k, postMass/advecVol)
			c.Energy1.Set(j, k, postEner)
		}
	})
}

// AdvecCellY is the y-direction counterpart (ac04-ac07).
func (c *Chunk) AdvecCellY(sweepNumber int) {
	if sweepNumber == 1 {
		// ac04
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				pv := c.Volume.At(j, k) + (c.VolFluxY.At(j, k+1) - c.VolFluxY.At(j, k) +
					c.VolFluxX.At(j+1, k) - c.VolFluxX.At(j, k))
				c.PreVol.Set(j, k, pv)
				c.PostVol.Set(j, k, pv-(c.VolFluxY.At(j, k+1)-c.VolFluxY.At(j, k)))
			}
		})
	} else {
		// ac05: the y-direction twin of ac01.
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				c.PreVol.Set(j, k, c.Volume.At(j, k)+c.VolFluxY.At(j, k+1)-c.VolFluxY.At(j, k))
				c.PostVol.Set(j, k, c.Volume.At(j, k))
			}
		})
	}

	// ac06
	c.parK(c.YMin, c.YMax+2, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			var upwind, donor, downwind, dif int
			if c.VolFluxY.At(j, k) > 0 {
				upwind, donor, downwind, dif = k-2, k-1, k, k-1
			} else {
				upwind, donor, downwind, dif = min(k+1, c.YMax+2), k, k-1, k
			}

			sigmat := math.Abs(c.VolFluxY.At(j, k)) / c.PreVol.At(j, donor)
			sigma3 := (1 + sigmat) * (c.VertexDY.At(k) / c.VertexDY.At(dif))
			sigma4 := 2 - sigmat

			diffuw := c.Density1.At(j, donor) - c.Density1.At(j, upwind)
			diffdw := c.Density1.At(j, downwind) - c.Density1.At(j, donor)
			limiter := 0.0
			if diffuw*diffdw > 0 {
				limiter = (1 - sigmat) * sign(diffdw) *
					math.Min(math.Abs(diffuw), math.Min(math.Abs(diffdw),
						oneBySix*(sigma3*math.Abs(diffuw)+sigma4*math.Abs(diffdw))))
			}
			c.MassFluxY.Set(j, k, c.VolFluxY.At(j, k)*(c.Density1.At(j, donor)+limiter))

			sigmam := math.Abs(c.MassFluxY.At(j, k)) / (c.Density1.At(j, donor) * c.PreVol.At(j, donor))
			diffuw = c.Energy1.At(j, donor) - c.Energy1.At(j, upwind)
			diffdw = c.Energy1.At(j, downwind) - c.Energy1.At(j, donor)
			limiter = 0
			if diffuw*diffdw > 0 {
				limiter = (1 - sigmam) * sign(diffdw) *
					math.Min(math.Abs(diffuw), math.Min(math.Abs(diffdw),
						oneBySix*(sigma3*math.Abs(diffuw)+sigma4*math.Abs(diffdw))))
			}
			c.EnerFlux.Set(j, k, c.MassFluxY.At(j, k)*(c.Energy1.At(j, donor)+limiter))
		}
	})

	// ac07
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			preMass := c.Density1.At(j, k) * c.PreVol.At(j, k)
			postMass := preMass + c.MassFluxY.At(j, k) - c.MassFluxY.At(j, k+1)
			postEner := (c.Energy1.At(j, k)*preMass + c.EnerFlux.At(j, k) - c.EnerFlux.At(j, k+1)) / postMass
			advecVol := c.PreVol.At(j, k) + c.VolFluxY.At(j, k) - c.VolFluxY.At(j, k+1)
			c.Density1.Set(j, k, postMass/advecVol)
			c.Energy1.Set(j, k, postEner)
		}
	})
}

// AdvecMomX advects one velocity component in the x direction
// (advec_mom_kernel). momSweep follows the Fortran convention:
// 1 = x first, 3 = x second.
func (c *Chunk) AdvecMomX(vel1 *Field, momSweep int) {
	switch momSweep {
	case 1: // am00
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				pv := c.Volume.At(j, k) + c.VolFluxY.At(j, k+1) - c.VolFluxY.At(j, k)
				c.PostVol.Set(j, k, pv)
				c.PreVol.Set(j, k, pv+c.VolFluxX.At(j+1, k)-c.VolFluxX.At(j, k))
			}
		})
	default: // momSweep == 3, am03
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				c.PostVol.Set(j, k, c.Volume.At(j, k))
				c.PreVol.Set(j, k, c.Volume.At(j, k)+c.VolFluxX.At(j+1, k)-c.VolFluxX.At(j, k))
			}
		})
	}

	// am04 (Listing 3)
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin - 2; j <= c.XMax+2; j++ {
			c.NodeFlux.Set(j, k, 0.25*(c.MassFluxX.At(j, k-1)+c.MassFluxX.At(j, k)+
				c.MassFluxX.At(j+1, k-1)+c.MassFluxX.At(j+1, k)))
		}
	})

	// am05
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin - 1; j <= c.XMax+2; j++ {
			post := 0.25 * (c.Density1.At(j, k-1)*c.PostVol.At(j, k-1) +
				c.Density1.At(j, k)*c.PostVol.At(j, k) +
				c.Density1.At(j-1, k-1)*c.PostVol.At(j-1, k-1) +
				c.Density1.At(j-1, k)*c.PostVol.At(j-1, k))
			c.NodeMassPost.Set(j, k, post)
			c.NodeMassPre.Set(j, k, post-c.NodeFlux.At(j-1, k)+c.NodeFlux.At(j, k))
		}
	})

	// am06: upwind momentum flux with limiter.
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin - 1; j <= c.XMax+1; j++ {
			var upwind, donor, downwind, dif int
			if c.NodeFlux.At(j, k) < 0 {
				upwind, donor, downwind, dif = j+2, j+1, j, j+1
			} else {
				upwind, donor, downwind, dif = j-1, j, j+1, j
			}
			sigma := math.Abs(c.NodeFlux.At(j, k)) / c.NodeMassPre.At(donor, k)
			width := c.CellDX.At(j)
			vdiffuw := vel1.At(donor, k) - vel1.At(upwind, k)
			vdiffdw := vel1.At(downwind, k) - vel1.At(donor, k)
			limiter := 0.0
			if vdiffuw*vdiffdw > 0 {
				auw := math.Abs(vdiffuw)
				adw := math.Abs(vdiffdw)
				wind := sign(vdiffdw)
				limiter = wind * math.Min(width*((2-sigma)*adw/width+(1+sigma)*auw/c.CellDX.At(dif))*oneBySix,
					math.Min(auw, adw))
			}
			advecVel := vel1.At(donor, k) + (1-sigma)*limiter
			c.MomFlux.Set(j, k, advecVel*c.NodeFlux.At(j, k))
		}
	})

	// am07: momentum-conservative velocity update.
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			vel1.Set(j, k, (vel1.At(j, k)*c.NodeMassPre.At(j, k)+
				c.MomFlux.At(j-1, k)-c.MomFlux.At(j, k))/c.NodeMassPost.At(j, k))
		}
	})
}

// AdvecMomY advects one velocity component in the y direction.
// momSweep: 2 = y first, 4 = y second.
func (c *Chunk) AdvecMomY(vel1 *Field, momSweep int) {
	switch momSweep {
	case 2: // am01
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				pv := c.Volume.At(j, k) + c.VolFluxX.At(j+1, k) - c.VolFluxX.At(j, k)
				c.PostVol.Set(j, k, pv)
				c.PreVol.Set(j, k, pv+c.VolFluxY.At(j, k+1)-c.VolFluxY.At(j, k))
			}
		})
	default: // momSweep == 4, am02
		c.parK(c.YMin-2, c.YMax+2, func(k int) {
			for j := c.XMin - 2; j <= c.XMax+2; j++ {
				c.PostVol.Set(j, k, c.Volume.At(j, k))
				c.PreVol.Set(j, k, c.Volume.At(j, k)+c.VolFluxY.At(j, k+1)-c.VolFluxY.At(j, k))
			}
		})
	}

	// am08
	c.parK(c.YMin-2, c.YMax+2, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			c.NodeFlux.Set(j, k, 0.25*(c.MassFluxY.At(j-1, k)+c.MassFluxY.At(j, k)+
				c.MassFluxY.At(j-1, k+1)+c.MassFluxY.At(j, k+1)))
		}
	})

	// am09
	c.parK(c.YMin-1, c.YMax+2, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			post := 0.25 * (c.Density1.At(j, k-1)*c.PostVol.At(j, k-1) +
				c.Density1.At(j, k)*c.PostVol.At(j, k) +
				c.Density1.At(j-1, k-1)*c.PostVol.At(j-1, k-1) +
				c.Density1.At(j-1, k)*c.PostVol.At(j-1, k))
			c.NodeMassPost.Set(j, k, post)
			c.NodeMassPre.Set(j, k, post-c.NodeFlux.At(j, k-1)+c.NodeFlux.At(j, k))
		}
	})

	// am10
	c.parK(c.YMin-1, c.YMax+1, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			var upwind, donor, downwind, dif int
			if c.NodeFlux.At(j, k) < 0 {
				upwind, donor, downwind, dif = k+2, k+1, k, k+1
			} else {
				upwind, donor, downwind, dif = k-1, k, k+1, k
			}
			sigma := math.Abs(c.NodeFlux.At(j, k)) / c.NodeMassPre.At(j, donor)
			width := c.CellDY.At(k)
			vdiffuw := vel1.At(j, donor) - vel1.At(j, upwind)
			vdiffdw := vel1.At(j, downwind) - vel1.At(j, donor)
			limiter := 0.0
			if vdiffuw*vdiffdw > 0 {
				auw := math.Abs(vdiffuw)
				adw := math.Abs(vdiffdw)
				wind := sign(vdiffdw)
				limiter = wind * math.Min(width*((2-sigma)*adw/width+(1+sigma)*auw/c.CellDY.At(dif))*oneBySix,
					math.Min(auw, adw))
			}
			advecVel := vel1.At(j, donor) + (1-sigma)*limiter
			c.MomFlux.Set(j, k, advecVel*c.NodeFlux.At(j, k))
		}
	})

	// am11
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			vel1.Set(j, k, (vel1.At(j, k)*c.NodeMassPre.At(j, k)+
				c.MomFlux.At(j, k-1)-c.MomFlux.At(j, k))/c.NodeMassPost.At(j, k))
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
