package cloverleaf

// Chunk is one rank's subdomain with all field data. Index conventions
// follow the Fortran code: inner cells are [XMin..XMax] x [YMin..YMax]
// (global, 1-based); cell-centered arrays carry a halo of 2
// (x_min-2..x_max+2), node/face arrays one extra element on the high side
// (x_min-2..x_max+3).
type Chunk struct {
	XMin, XMax, YMin, YMax int // global inner cell bounds, inclusive

	// Cell-centered fields.
	Density0, Density1 *Field
	Energy0, Energy1   *Field
	Pressure           *Field
	Viscosity          *Field
	SoundSpeed         *Field
	Volume             *Field

	// Node-centered velocities.
	XVel0, XVel1 *Field
	YVel0, YVel1 *Field

	// Face-centered fluxes and areas.
	VolFluxX, MassFluxX *Field // x faces
	VolFluxY, MassFluxY *Field // y faces
	XArea, YArea        *Field

	// Work arrays (advection scratch).
	NodeFlux, NodeMassPost, NodeMassPre *Field
	MomFlux                             *Field
	PreVol, PostVol, EnerFlux           *Field

	// Grid geometry.
	CellX, CellDX, VertexX, VertexDX *Line1D
	CellY, CellDY, VertexY, VertexDY *Line1D

	cfg     Config
	threads int // kernel worker count (see SetThreads)
}

// NewChunk allocates the chunk covering the given global cell range.
func NewChunk(cfg Config, xmin, xmax, ymin, ymax int) *Chunk {
	c := &Chunk{XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax, cfg: cfg}
	jl, jh := xmin-2, xmax+2
	kl, kh := ymin-2, ymax+2
	jhn, khn := xmax+3, ymax+3 // node/face high bounds

	cell := func() *Field { return NewField(jl, jh, kl, kh) }
	node := func() *Field { return NewField(jl, jhn, kl, khn) }

	c.Density0, c.Density1 = cell(), cell()
	c.Energy0, c.Energy1 = cell(), cell()
	c.Pressure, c.Viscosity, c.SoundSpeed = cell(), cell(), cell()
	c.Volume = cell()

	c.XVel0, c.XVel1 = node(), node()
	c.YVel0, c.YVel1 = node(), node()

	c.VolFluxX, c.MassFluxX = NewField(jl, jhn, kl, kh), NewField(jl, jhn, kl, kh)
	c.VolFluxY, c.MassFluxY = NewField(jl, jh, kl, khn), NewField(jl, jh, kl, khn)
	c.XArea = NewField(jl, jhn, kl, kh)
	c.YArea = NewField(jl, jh, kl, khn)

	c.NodeFlux, c.NodeMassPost, c.NodeMassPre = node(), node(), node()
	c.MomFlux = node()
	c.PreVol, c.PostVol, c.EnerFlux = node(), node(), node()

	c.CellX, c.CellDX = NewLine1D(jl, jh), NewLine1D(jl, jh)
	c.VertexX, c.VertexDX = NewLine1D(jl, jhn), NewLine1D(jl, jhn)
	c.CellY, c.CellDY = NewLine1D(kl, kh), NewLine1D(kl, kh)
	c.VertexY, c.VertexDY = NewLine1D(kl, khn), NewLine1D(kl, khn)

	c.initGeometry()
	c.initState()
	return c
}

// XSpan returns the inner x extent in cells.
func (c *Chunk) XSpan() int { return c.XMax - c.XMin + 1 }

// YSpan returns the inner y extent in cells.
func (c *Chunk) YSpan() int { return c.YMax - c.YMin + 1 }

// dx and dy are the uniform cell sizes.
func (c *Chunk) dx() float64 { return (c.cfg.XMax - c.cfg.XMin) / float64(c.cfg.GridX) }
func (c *Chunk) dy() float64 { return (c.cfg.YMax - c.cfg.YMin) / float64(c.cfg.GridY) }

// initGeometry fills coordinates, cell widths, areas and volumes
// (initialise_chunk_kernel).
func (c *Chunk) initGeometry() {
	dx, dy := c.dx(), c.dy()
	for j := c.VertexX.Lo; j <= c.VertexX.Hi; j++ {
		c.VertexX.Set(j, c.cfg.XMin+dx*float64(j-1))
		c.VertexDX.Set(j, dx)
	}
	for k := c.VertexY.Lo; k <= c.VertexY.Hi; k++ {
		c.VertexY.Set(k, c.cfg.YMin+dy*float64(k-1))
		c.VertexDY.Set(k, dy)
	}
	for j := c.CellX.Lo; j <= c.CellX.Hi; j++ {
		c.CellX.Set(j, c.cfg.XMin+dx*(float64(j-1)+0.5))
		c.CellDX.Set(j, dx)
	}
	for k := c.CellY.Lo; k <= c.CellY.Hi; k++ {
		c.CellY.Set(k, c.cfg.YMin+dy*(float64(k-1)+0.5))
		c.CellDY.Set(k, dy)
	}
	for k := c.Volume.KLo; k <= c.Volume.KHi; k++ {
		for j := c.Volume.JLo; j <= c.Volume.JHi; j++ {
			c.Volume.Set(j, k, dx*dy)
		}
	}
	for k := c.XArea.KLo; k <= c.XArea.KHi; k++ {
		for j := c.XArea.JLo; j <= c.XArea.JHi; j++ {
			c.XArea.Set(j, k, dy)
		}
	}
	for k := c.YArea.KLo; k <= c.YArea.KHi; k++ {
		for j := c.YArea.JLo; j <= c.YArea.JHi; j++ {
			c.YArea.Set(j, k, dx)
		}
	}
}

// initState applies the configured states (generate_chunk_kernel).
func (c *Chunk) initState() {
	bg := c.cfg.States[0]
	c.Density0.Fill(bg.Density)
	c.Energy0.Fill(bg.Energy)
	c.XVel0.Fill(bg.XVel)
	c.YVel0.Fill(bg.YVel)

	for _, st := range c.cfg.States[1:] {
		for k := c.Density0.KLo; k <= c.Density0.KHi; k++ {
			yc := c.CellY.At(k)
			if yc < st.YMin || yc >= st.YMax {
				continue
			}
			for j := c.Density0.JLo; j <= c.Density0.JHi; j++ {
				xc := c.CellX.At(j)
				if xc < st.XMin || xc >= st.XMax {
					continue
				}
				c.Density0.Set(j, k, st.Density)
				c.Energy0.Set(j, k, st.Energy)
			}
		}
	}
	c.Density1.CopyFrom(c.Density0)
	c.Energy1.CopyFrom(c.Energy0)
	c.XVel1.CopyFrom(c.XVel0)
	c.YVel1.CopyFrom(c.YVel0)
}

// Summary holds the field_summary_kernel reductions.
type Summary struct {
	Volume         float64
	Mass           float64
	InternalEnergy float64
	KineticEnergy  float64
	Pressure       float64
}

// FieldSummary computes the conserved quantities over the inner cells.
func (c *Chunk) FieldSummary() Summary {
	var s Summary
	for k := c.YMin; k <= c.YMax; k++ {
		for j := c.XMin; j <= c.XMax; j++ {
			vsqrd := 0.0
			for kv := k; kv <= k+1; kv++ {
				for jv := j; jv <= j+1; jv++ {
					vsqrd += 0.25 * (c.XVel0.At(jv, kv)*c.XVel0.At(jv, kv) +
						c.YVel0.At(jv, kv)*c.YVel0.At(jv, kv))
				}
			}
			cellVol := c.Volume.At(j, k)
			cellMass := cellVol * c.Density0.At(j, k)
			s.Volume += cellVol
			s.Mass += cellMass
			s.InternalEnergy += cellMass * c.Energy0.At(j, k)
			s.KineticEnergy += cellMass * 0.5 * vsqrd
			s.Pressure += cellVol * c.Pressure.At(j, k)
		}
	}
	return s
}
