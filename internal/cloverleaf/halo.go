package cloverleaf

import (
	"cloversim/internal/mpi"
)

// FieldKind encodes staggering and reflection behaviour for halo updates
// (update_halo_kernel).
type FieldKind struct {
	XNode bool // staggered in x (node/x-face arrays)
	YNode bool // staggered in y (node/y-face arrays)
	XFlip bool // normal component: sign flip at x boundaries
	YFlip bool // sign flip at y boundaries
}

// Standard kinds.
var (
	KindCell  = FieldKind{}
	KindNodeX = FieldKind{XNode: true, YNode: true, XFlip: true} // xvel
	KindNodeY = FieldKind{XNode: true, YNode: true, YFlip: true} // yvel
	KindFluxX = FieldKind{XNode: true, XFlip: true}              // vol/mass_flux_x
	KindFluxY = FieldKind{YNode: true, YFlip: true}              // vol/mass_flux_y
)

// HaloField pairs a field with its kind for an exchange phase.
type HaloField struct {
	F    *Field
	Kind FieldKind
}

// reflect applies the reflective physical boundary on the chunk's outer
// edges for the sides where the chunk touches the global mesh boundary.
// edges = [left, right, bottom, top].
func (c *Chunk) reflect(hf HaloField, depth int, edges [4]bool) {
	f, kind := hf.F, hf.Kind
	kLo, kHi := c.YMin-depth, c.YMax+depth
	if kind.YNode {
		kHi++
	}
	if kLo < f.KLo {
		kLo = f.KLo
	}
	if kHi > f.KHi {
		kHi = f.KHi
	}

	if edges[0] { // left
		for k := kLo; k <= kHi; k++ {
			for d := 1; d <= depth; d++ {
				src := c.XMin + d - 1
				if kind.XNode {
					src = c.XMin + d
				}
				v := f.At(src, k)
				if kind.XFlip {
					v = -v
				}
				f.Set(c.XMin-d, k, v)
			}
		}
	}
	if edges[1] { // right
		hiFace := c.XMax + 1 // node index of the right boundary face
		for k := kLo; k <= kHi; k++ {
			for d := 1; d <= depth; d++ {
				var dst, src int
				if kind.XNode {
					dst, src = hiFace+d, hiFace-d
				} else {
					dst, src = c.XMax+d, c.XMax-d+1
				}
				if dst > f.JHi || src < f.JLo {
					continue
				}
				v := f.At(src, k)
				if kind.XFlip {
					v = -v
				}
				f.Set(dst, k, v)
			}
		}
	}

	jLo, jHi := c.XMin-depth, c.XMax+depth
	if kind.XNode {
		jHi++
	}
	if jLo < f.JLo {
		jLo = f.JLo
	}
	if jHi > f.JHi {
		jHi = f.JHi
	}

	if edges[2] { // bottom
		for d := 1; d <= depth; d++ {
			src := c.YMin + d - 1
			if kind.YNode {
				src = c.YMin + d
			}
			for j := jLo; j <= jHi; j++ {
				v := f.At(j, src)
				if kind.YFlip {
					v = -v
				}
				f.Set(j, c.YMin-d, v)
			}
		}
	}
	if edges[3] { // top
		hiFace := c.YMax + 1
		for d := 1; d <= depth; d++ {
			var dst, src int
			if kind.YNode {
				dst, src = hiFace+d, hiFace-d
			} else {
				dst, src = c.YMax+d, c.YMax-d+1
			}
			if dst > f.KHi || src < f.KLo {
				continue
			}
			for j := jLo; j <= jHi; j++ {
				v := f.At(j, src)
				if kind.YFlip {
					v = -v
				}
				f.Set(j, dst, v)
			}
		}
	}
}

// UpdateHaloSerial applies reflective boundaries on all four edges (the
// single-chunk case).
func (c *Chunk) UpdateHaloSerial(fields []HaloField, depth int) {
	for _, hf := range fields {
		c.reflect(hf, depth, [4]bool{true, true, true, true})
	}
}

// Neighbors identifies the adjacent ranks of a chunk ([left, right,
// bottom, top], -1 at physical boundaries).
type Neighbors [4]int

// packColumns serializes `depth` columns starting at j0 (inclusive,
// increasing) over the field's full k range into buf.
func packColumns(f *Field, j0, depth int) []float64 {
	rows := f.KHi - f.KLo + 1
	buf := make([]float64, depth*rows)
	i := 0
	for k := f.KLo; k <= f.KHi; k++ {
		for d := 0; d < depth; d++ {
			buf[i] = f.At(j0+d, k)
			i++
		}
	}
	return buf
}

func unpackColumns(f *Field, j0, depth int, buf []float64) {
	i := 0
	for k := f.KLo; k <= f.KHi; k++ {
		for d := 0; d < depth; d++ {
			f.Set(j0+d, k, buf[i])
			i++
		}
	}
}

func packRows(f *Field, k0, depth int) []float64 {
	cols := f.JHi - f.JLo + 1
	buf := make([]float64, depth*cols)
	i := 0
	for d := 0; d < depth; d++ {
		for j := f.JLo; j <= f.JHi; j++ {
			buf[i] = f.At(j, k0+d)
			i++
		}
	}
	return buf
}

func unpackRows(f *Field, k0, depth int, buf []float64) {
	i := 0
	for d := 0; d < depth; d++ {
		for j := f.JLo; j <= f.JHi; j++ {
			f.Set(j, k0+d, buf[i])
			i++
		}
	}
}

// UpdateHaloMPI exchanges halos with neighbor ranks and applies
// reflective boundaries at physical edges. The x exchange completes
// before the y exchange so corner halos propagate correctly.
func (c *Chunk) UpdateHaloMPI(comm *mpi.Comm, nbr Neighbors, fields []HaloField, depth int) error {
	// Physical-boundary reflection first (y reflection of x halos is
	// handled because the y pass sends full rows including x halos).
	for _, hf := range fields {
		c.reflect(hf, depth, [4]bool{nbr[0] < 0, nbr[1] < 0, nbr[2] < 0, nbr[3] < 0})
	}

	for fi, hf := range fields {
		f := hf.F
		tagBase := fi * 8

		// --- x direction ---
		// Column conventions: cells XMin..XMax are mine; for x-staggered
		// fields face XMax+1 is shared with the right neighbor (both
		// compute it identically), so staggered exchanges shift by one:
		// my right halo faces start at XMax+2 and come from the
		// neighbor's faces XMin+1.., while the neighbor's left halo
		// faces XMin-depth..XMin-1 are my faces XMax+1-depth..XMax.
		sendLeft, sendRight := c.XMin, c.XMax-depth+1
		recvLeftAt, recvRightAt := c.XMin-depth, c.XMax+1
		if hf.Kind.XNode {
			sendLeft, sendRight = c.XMin+1, c.XMax+1-depth
			recvRightAt = c.XMax + 2
		}
		var reqs []*mpi.Request
		var recvL, recvR []float64
		if nbr[0] >= 0 {
			recvL = make([]float64, depth*(f.KHi-f.KLo+1))
			reqs = append(reqs, comm.Irecv(recvL, nbr[0], tagBase+0))
			reqs = append(reqs, comm.Isend(packColumns(f, sendLeft, depth), nbr[0], tagBase+1))
		}
		if nbr[1] >= 0 {
			recvR = make([]float64, depth*(f.KHi-f.KLo+1))
			reqs = append(reqs, comm.Irecv(recvR, nbr[1], tagBase+1))
			reqs = append(reqs, comm.Isend(packColumns(f, sendRight, depth), nbr[1], tagBase+0))
		}
		if err := comm.Waitall(reqs); err != nil {
			return err
		}
		if recvL != nil {
			unpackColumns(f, recvLeftAt, depth, recvL)
		}
		if recvR != nil {
			unpackColumns(f, recvRightAt, depth, recvR)
		}

		// --- y direction ---
		sendBottom, sendTop := c.YMin, c.YMax-depth+1
		recvBottomAt, recvTopAt := c.YMin-depth, c.YMax+1
		if hf.Kind.YNode {
			sendBottom, sendTop = c.YMin+1, c.YMax+1-depth
			recvTopAt = c.YMax + 2
		}
		reqs = reqs[:0]
		var recvB, recvT []float64
		if nbr[2] >= 0 {
			recvB = make([]float64, depth*(f.JHi-f.JLo+1))
			reqs = append(reqs, comm.Irecv(recvB, nbr[2], tagBase+2))
			reqs = append(reqs, comm.Isend(packRows(f, sendBottom, depth), nbr[2], tagBase+3))
		}
		if nbr[3] >= 0 {
			recvT = make([]float64, depth*(f.JHi-f.JLo+1))
			reqs = append(reqs, comm.Irecv(recvT, nbr[3], tagBase+3))
			reqs = append(reqs, comm.Isend(packRows(f, sendTop, depth), nbr[3], tagBase+2))
		}
		if err := comm.Waitall(reqs); err != nil {
			return err
		}
		if recvB != nil {
			unpackRows(f, recvBottomAt, depth, recvB)
		}
		if recvT != nil {
			unpackRows(f, recvTopAt, depth, recvT)
		}
	}
	return nil
}
