package cloverleaf

import (
	"fmt"
	"sort"
	"sync"

	"cloversim/internal/decomp"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
	"cloversim/internal/trace"
)

// TrafficOptions configures a traffic study (the simulation analogue of a
// likwid-perfctr-instrumented CloverLeaf run).
type TrafficOptions struct {
	Machine *machine.Spec
	Ranks   int
	// GridX, GridY: global mesh (defaults to the paper's 15360^2).
	GridX, GridY int
	// MaxRows truncates each rank's y extent for speed (traffic per
	// iteration is row-invariant once layer conditions are warm);
	// 0 = full extent.
	MaxRows int
	// Build knobs of the paper's patched CloverLeaf (config.mk).
	AlignArrays   bool
	NTStores      bool
	OptimizeLoops bool
	// SpecI2MOff disables the write-allocate-evasion feature (MSR bit).
	SpecI2MOff bool
	// PFOff disables the hardware prefetchers (likwid-features).
	PFOff bool
	// HotspotOnly skips the auxiliary (non-Table-I) kernels.
	HotspotOnly bool
	Seed        uint64
}

func (o *TrafficOptions) defaults() {
	if o.GridX == 0 {
		o.GridX = 15360
	}
	if o.GridY == 0 {
		o.GridY = 15360
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
}

// LoopTraffic aggregates one loop's simulated traffic across all ranks.
type LoopTraffic struct {
	Name         string
	Kernel       string
	Hotspot      bool
	CallsPerStep float64
	FlopsPerIt   int
	// Counts is the node-aggregate traffic of ONE call of the loop
	// (scaled from the truncated simulation to the full y extent).
	Counts memsim.Counts
	// scaled volumes as floats (scaling produces non-integers)
	ReadBytes, WriteBytes, ItoMBytes float64
	// Iters is the node-aggregate iteration count of one call.
	Iters float64
}

// TotalBytes returns read+write volume of one call.
func (l *LoopTraffic) TotalBytes() float64 { return l.ReadBytes + l.WriteBytes }

// BytesPerIt returns the code balance normalized the way the paper does:
// volume per call divided by the global inner cell count.
func (l *LoopTraffic) BytesPerIt(innerCells float64) float64 {
	return l.TotalBytes() / innerCells
}

// ReadPerIt returns read bytes per inner grid cell.
func (l *LoopTraffic) ReadPerIt(innerCells float64) float64 {
	return l.ReadBytes / innerCells
}

// WritePerIt returns write bytes per inner grid cell.
func (l *LoopTraffic) WritePerIt(innerCells float64) float64 {
	return l.WriteBytes / innerCells
}

// TrafficResult is the outcome of one traffic study.
type TrafficResult struct {
	Ranks      int
	InnerCells float64
	Loops      map[string]*LoopTraffic
	// RankShapes records how many distinct subdomain/pressure groups
	// were simulated (diagnostic).
	RankShapes int
}

// Loop returns a loop's aggregate (nil if absent).
func (r *TrafficResult) Loop(name string) *LoopTraffic { return r.Loops[name] }

// LoopNames returns the loop names in sorted order. Aggregations over
// Loops must iterate in this order: float addition is not associative,
// so map-order sums would differ in the low bits between runs and break
// byte-stable campaign output.
func (r *TrafficResult) LoopNames() []string {
	names := make([]string, 0, len(r.Loops))
	for name := range r.Loops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BytesPerStep returns the node-aggregate memory volume of one hydro step.
func (r *TrafficResult) BytesPerStep() float64 {
	var v float64
	for _, name := range r.LoopNames() {
		l := r.Loops[name]
		v += l.TotalBytes() * l.CallsPerStep
	}
	return v
}

// FlopsPerStep returns the node-aggregate flops of one hydro step.
func (r *TrafficResult) FlopsPerStep() float64 {
	var v float64
	for _, name := range r.LoopNames() {
		l := r.Loops[name]
		v += float64(l.FlopsPerIt) * l.Iters * l.CallsPerStep
	}
	return v
}

// rankGroup identifies ranks with identical simulation conditions.
type rankGroup struct {
	xspan, yspan int
	pressure     float64
	count        int
	firstRank    int
}

// groupResult is one rank group's simulated loop traffic, pre-scaling.
type groupResult struct {
	firstRank int
	weights   float64
	loops     []LoopInstance
	counts    []memsim.Counts
	scales    []float64
	iters     []float64
}

// groupError pairs a group failure with its first rank so RunTraffic
// can report a deterministic first error regardless of scheduler order.
type groupError struct {
	firstRank int
	err       error
}

// trafficGroupHook is a test seam: when set, it runs at the top of
// every rank-group simulation, letting the regression suite inject a
// panicking loop without reaching into the trace executor. Production
// code never sets it.
var trafficGroupHook func(g *rankGroup)

// simulateGroup simulates one rank group's loop traffic. A panic
// anywhere in the group's simulation — a workload bug, malformed
// bounds — is recovered into an error so it fails this traffic study
// (one scenario in a sweep), not the whole process hosting it (a
// sweepd worker serving many campaigns).
func simulateGroup(o TrafficOptions, spec *machine.Spec, env trace.Env, g *rankGroup) (gr groupResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cloverleaf: rank group at rank %d (%dx%d) panicked: %v", g.firstRank, g.xspan, g.yspan, r)
		}
	}()
	if trafficGroupHook != nil {
		trafficGroupHook(g)
	}
	// Simulated chunk: full x extent, truncated y extent.
	t := NewTrafficChunk(1, g.xspan, 1, g.yspan, o.MaxRows, o.AlignArrays)
	full := NewTrafficChunk(1, g.xspan, 1, g.yspan, 0, o.AlignArrays)

	loops := t.HotspotLoops(o.OptimizeLoops)
	fullLoops := full.HotspotLoops(o.OptimizeLoops)
	if !o.HotspotOnly {
		loops = append(loops, t.AuxLoops()...)
		fullLoops = append(fullLoops, full.AuxLoops()...)
	}

	x := trace.NewExecutor(spec)
	x.NTStores = o.NTStores
	e := env
	e.Pressure = g.pressure
	x.SetEnv(e)
	x.E.Seed(o.Seed ^ uint64(g.firstRank+1)*0x9e3779b97f4a7c15)

	gr = groupResult{firstRank: g.firstRank, weights: float64(g.count)}
	gr.loops = loops
	for i, li := range loops {
		c := x.Run(li.Loop, li.Bounds)
		scale := float64(fullLoops[i].Bounds.Iterations()) / float64(li.Bounds.Iterations())
		gr.counts = append(gr.counts, c)
		gr.scales = append(gr.scales, scale)
		gr.iters = append(gr.iters, float64(fullLoops[i].Bounds.Iterations()))
	}
	return gr, nil
}

// RunTraffic simulates the memory traffic of one hydro step for the
// given rank count and returns per-loop aggregates.
//
//lint:allow ctxflow one cell's bounded physics; cancellation is scenario-granular at the sweep engine (PR 4)
func RunTraffic(o TrafficOptions) (*TrafficResult, error) {
	o.defaults()
	if o.Machine == nil {
		return nil, fmt.Errorf("cloverleaf: traffic study needs a machine spec")
	}
	if o.Ranks < 1 || o.Ranks > o.Machine.Cores() {
		return nil, fmt.Errorf("cloverleaf: rank count %d outside 1..%d", o.Ranks, o.Machine.Cores())
	}

	spec := *o.Machine // shallow copy so the MSR knob does not leak
	spec.I2M.Enabled = spec.I2M.Enabled && !o.SpecI2MOff

	subs := decomp.Decompose(o.Ranks, o.GridX, o.GridY)
	groups := map[[3]int]*rankGroup{}
	for _, s := range subs {
		p := spec.PressureAt(s.Rank, o.Ranks)
		key := [3]int{s.XSpan(), s.YSpan(), int(p * 1e6)}
		g, ok := groups[key]
		if !ok {
			groups[key] = &rankGroup{xspan: s.XSpan(), yspan: s.YSpan(), pressure: p, count: 1, firstRank: s.Rank}
			continue
		}
		g.count++
	}

	env := trace.Env{
		NodeFraction:  float64(o.Ranks) / float64(spec.Cores()),
		ActiveSockets: spec.ActiveSockets(o.Ranks),
		PFOn:          !o.PFOff,
	}

	results := make([]groupResult, 0, len(groups))
	var errs []groupError
	var mu sync.Mutex
	var wg sync.WaitGroup

	for _, g := range groups {
		wg.Add(1)
		go func(g *rankGroup) {
			defer wg.Done()
			gr, err := simulateGroup(o, &spec, env, g)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, groupError{firstRank: g.firstRank, err: err})
				return
			}
			results = append(results, gr)
		}(g)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Deterministic "first" error: lowest first rank, not scheduler
		// order.
		sort.Slice(errs, func(a, b int) bool { return errs[a].firstRank < errs[b].firstRank })
		return nil, errs[0].err
	}

	// Groups finish in scheduler order; accumulate in rank order so the
	// float sums below are bit-identical across runs and worker counts.
	sort.Slice(results, func(a, b int) bool { return results[a].firstRank < results[b].firstRank })

	res := &TrafficResult{
		Ranks:      o.Ranks,
		InnerCells: float64(o.GridX) * float64(o.GridY),
		Loops:      map[string]*LoopTraffic{},
		RankShapes: len(groups),
	}
	for _, gr := range results {
		for i, li := range gr.loops {
			lt, ok := res.Loops[li.Loop.Name]
			if !ok {
				lt = &LoopTraffic{
					Name:         li.Loop.Name,
					Kernel:       li.Kernel,
					Hotspot:      li.Hotspot,
					CallsPerStep: li.CallsPerStep,
					FlopsPerIt:   li.Loop.FlopsPerIt,
				}
				res.Loops[li.Loop.Name] = lt
			}
			w := gr.weights
			s := gr.scales[i]
			c := gr.counts[i]
			lt.Counts = lt.Counts.Add(c)
			lt.ReadBytes += w * s * float64(c.ReadBytes())
			lt.WriteBytes += w * s * float64(c.WriteBytes())
			lt.ItoMBytes += w * s * float64(c.ItoMLines*64)
			lt.Iters += w * gr.iters[i]
		}
	}
	return res, nil
}
