package cloverleaf

import (
	"fmt"
	"testing"

	"cloversim/internal/machine"
)

// Benchmarks for the memsim-backed traffic hot path: the baseline
// trajectory future performance PRs are measured against.
//
//	go test -bench BenchmarkRunTraffic ./internal/cloverleaf

func benchTrafficOpts(ranks int) TrafficOptions {
	return TrafficOptions{
		Machine:     machine.ICX8360Y(),
		Ranks:       ranks,
		MaxRows:     16,
		AlignArrays: true,
		HotspotOnly: true,
	}
}

func BenchmarkRunTraffic(b *testing.B) {
	for _, ranks := range []int{1, 18, 72} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			o := benchTrafficOpts(ranks)
			var bpc float64
			for i := 0; i < b.N; i++ {
				r, err := RunTraffic(o)
				if err != nil {
					b.Fatal(err)
				}
				bpc = r.BytesPerStep() / r.InnerCells
			}
			b.ReportMetric(bpc, "bytes/cell")
		})
	}
}

func BenchmarkRunTrafficFullKernels(b *testing.B) {
	o := benchTrafficOpts(18)
	o.HotspotOnly = false
	for i := 0; i < b.N; i++ {
		if _, err := RunTraffic(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelNode(b *testing.B) {
	o := benchTrafficOpts(72)
	var bw float64
	for i := 0; i < b.N; i++ {
		m, err := ModelNode(o)
		if err != nil {
			b.Fatal(err)
		}
		bw = m.BandwidthBytes / 1e9
	}
	b.ReportMetric(bw, "GB/s")
}

// TestRunTrafficBitIdentical locks in the deterministic accumulation
// order: repeated runs must agree to the last float bit, or campaign
// emitters cannot be byte-stable.
func TestRunTrafficBitIdentical(t *testing.T) {
	o := benchTrafficOpts(18) // 18 ranks -> several rank groups
	a, err := RunTraffic(o)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		c, err := RunTraffic(o)
		if err != nil {
			t.Fatal(err)
		}
		if a.BytesPerStep() != c.BytesPerStep() {
			t.Fatalf("BytesPerStep differs bitwise between runs: %x vs %x",
				a.BytesPerStep(), c.BytesPerStep())
		}
		for _, name := range a.LoopNames() {
			if a.Loops[name].ReadBytes != c.Loops[name].ReadBytes ||
				a.Loops[name].WriteBytes != c.Loops[name].WriteBytes {
				t.Fatalf("loop %s traffic differs bitwise between runs", name)
			}
		}
	}
}
