package cloverleaf

import (
	"math"
	"testing"
)

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

func TestFieldIndexing(t *testing.T) {
	f := NewField(-2, 5, -1, 3)
	f.Set(-2, -1, 1.5)
	f.Set(5, 3, 2.5)
	f.Add(5, 3, 0.5)
	if f.At(-2, -1) != 1.5 || f.At(5, 3) != 3.0 {
		t.Fatal("field indexing broken")
	}
	if f.Row() != 8 || len(f.V) != 8*5 {
		t.Fatalf("field shape: row %d len %d", f.Row(), len(f.V))
	}
	g := NewField(-2, 5, -1, 3)
	g.CopyFrom(f)
	if g.At(5, 3) != 3.0 {
		t.Fatal("CopyFrom broken")
	}
	f.Fill(7)
	if f.At(0, 0) != 7 {
		t.Fatal("Fill broken")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Tiny().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Tiny()
	bad.GridX = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero grid accepted")
	}
	bad = Tiny()
	bad.Gamma = 1
	if err := bad.Validate(); err == nil {
		t.Error("gamma 1 accepted")
	}
}

func TestTinyMatchesPaperGeometry(t *testing.T) {
	c := Tiny()
	if c.GridX != 15360 || c.GridY != 15360 || c.EndStep != 400 {
		t.Fatalf("Tiny working set wrong: %dx%d, %d steps", c.GridX, c.GridY, c.EndStep)
	}
}

func TestIdealGas(t *testing.T) {
	cfg := Small(16, 1)
	ch := NewChunk(cfg, 1, 16, 1, 16)
	ch.Density0.Fill(1.0)
	ch.Energy0.Fill(2.5)
	ch.IdealGas(false)
	// p = (1.4-1)*1*2.5 = 1.0
	if p := ch.Pressure.At(8, 8); relDiff(p, 1.0) > 1e-12 {
		t.Fatalf("ideal gas pressure = %g, want 1", p)
	}
	ss := ch.SoundSpeed.At(8, 8)
	if ss <= 0 || math.IsNaN(ss) {
		t.Fatalf("sound speed = %g", ss)
	}
	// Sound speed grows with pressure.
	ch.Energy0.Fill(5.0)
	ch.IdealGas(false)
	if ch.SoundSpeed.At(8, 8) <= ss {
		t.Error("sound speed must grow with energy")
	}
}

func TestCalcDtPositiveAndCFL(t *testing.T) {
	cfg := Small(32, 1)
	ch := NewChunk(cfg, 1, 32, 1, 32)
	ch.IdealGas(false)
	ch.CalcViscosity()
	dt := ch.CalcDt()
	if dt <= 0 || math.IsNaN(dt) {
		t.Fatalf("dt = %g", dt)
	}
	// CFL: dt < dx / soundspeed.
	maxSS := 0.0
	for k := 1; k <= 32; k++ {
		for j := 1; j <= 32; j++ {
			maxSS = math.Max(maxSS, ch.SoundSpeed.At(j, k))
		}
	}
	if dt >= ch.dx()/maxSS {
		t.Fatalf("dt %g violates CFL %g", dt, ch.dx()/maxSS)
	}
}

func TestUniformStateStaysUniform(t *testing.T) {
	// A single uniform state with zero velocity must remain static.
	cfg := Small(24, 10)
	cfg.States = cfg.States[:1] // background only
	r := NewSerialRank(cfg)
	s0 := r.Chunk.FieldSummary()
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	s1 := r.Chunk.FieldSummary()
	if relDiff(s0.Mass, s1.Mass) > 1e-12 {
		t.Errorf("uniform mass drifted: %g -> %g", s0.Mass, s1.Mass)
	}
	if s1.KineticEnergy > 1e-20 {
		t.Errorf("uniform state developed kinetic energy %g", s1.KineticEnergy)
	}
	if relDiff(s0.InternalEnergy, s1.InternalEnergy) > 1e-12 {
		t.Errorf("uniform internal energy drifted")
	}
}

func TestMassConservationSerial(t *testing.T) {
	cfg := Small(64, 20)
	r := NewSerialRank(cfg)
	m0 := r.Chunk.FieldSummary().Mass
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	m1 := r.Chunk.FieldSummary().Mass
	if relDiff(m0, m1) > 1e-10 {
		t.Errorf("mass not conserved: %.15e -> %.15e (%.2e)", m0, m1, relDiff(m0, m1))
	}
}

func TestEnergyBudget(t *testing.T) {
	// Total energy (internal + kinetic) conserved to discretization error.
	cfg := Small(64, 20)
	r := NewSerialRank(cfg)
	s0 := r.Chunk.FieldSummary()
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	s1 := r.GlobalSummary()
	e0 := s0.InternalEnergy + s0.KineticEnergy
	e1 := s1.InternalEnergy + s1.KineticEnergy
	if relDiff(e0, e1) > 0.02 {
		t.Errorf("total energy drifted %.2f%%: %g -> %g", 100*relDiff(e0, e1), e0, e1)
	}
	// The shock must convert some internal energy into kinetic energy.
	if s1.KineticEnergy <= 0 {
		t.Error("no kinetic energy developed")
	}
}

func TestDynamicsActuallyHappen(t *testing.T) {
	cfg := Small(48, 15)
	r := NewSerialRank(cfg)
	d0 := r.Chunk.Density0.At(24, 24)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	moved := false
	for k := 1; k <= 48 && !moved; k++ {
		for j := 1; j <= 48; j++ {
			if math.Abs(r.Chunk.XVel0.At(j, k)) > 1e-9 {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Fatal("no motion after 15 steps of a shock problem")
	}
	_ = d0
}

func TestXYSymmetry(t *testing.T) {
	// A diagonal-symmetric initial state must stay diagonal-symmetric:
	// density(j,k) == density(k,j).
	cfg := Small(40, 8)
	cfg.States[1].XMax = cfg.XMax / 2
	cfg.States[1].YMax = cfg.YMax / 2 // square energetic region
	r := NewSerialRank(cfg)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k := 1; k <= 40; k++ {
		for j := 1; j <= 40; j++ {
			d := relDiff(r.Chunk.Density0.At(j, k), r.Chunk.Density0.At(k, j))
			if d > worst {
				worst = d
			}
		}
	}
	// Sweep-order alternation breaks exact symmetry; it must stay small.
	if worst > 1e-3 {
		t.Errorf("diagonal symmetry broken by %.2e", worst)
	}
}

func TestTimestepGrowthLimited(t *testing.T) {
	cfg := Small(32, 6)
	r := NewSerialRank(cfg)
	prev := cfg.DtInit
	for step := 1; step <= 6; step++ {
		dt, err := r.Step(step)
		if err != nil {
			t.Fatal(err)
		}
		if dt > prev*cfg.DtRise*(1+1e-12) {
			t.Fatalf("step %d: dt %g exceeded rise limit from %g", step, dt, prev)
		}
		if dt > cfg.DtMax {
			t.Fatalf("dt %g above DtMax", dt)
		}
		prev = dt
	}
}

func TestSerialVsMPIEquivalence(t *testing.T) {
	cfg := Small(60, 10)
	serial, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{2, 3, 4, 6} {
		par, _, err := RunMPI(cfg, np)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if relDiff(serial.Mass, par.Mass) > 1e-4 {
			t.Errorf("np=%d: mass %g vs serial %g", np, par.Mass, serial.Mass)
		}
		if relDiff(serial.InternalEnergy, par.InternalEnergy) > 1e-3 {
			t.Errorf("np=%d: IE %g vs serial %g", np, par.InternalEnergy, serial.InternalEnergy)
		}
		if relDiff(serial.Volume, par.Volume) > 1e-12 {
			t.Errorf("np=%d: volume mismatch", np)
		}
	}
}

func TestMPIPrimeRankCount(t *testing.T) {
	// Prime rank counts force the 1D inner-dimension decomposition.
	cfg := Small(55, 6)
	serial, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, times, err := RunMPI(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(serial.Mass, par.Mass) > 1e-4 {
		t.Errorf("prime decomposition diverged: %g vs %g", par.Mass, serial.Mass)
	}
	if len(times) != 5 || times[1].Waitall <= 0 {
		t.Error("MPI time model not populated")
	}
}

func TestHaloExchangeConsistency(t *testing.T) {
	// After one MPI step, interior values match the serial run cell by
	// cell (the halo protocol is exact, not just statistically right).
	cfg := Small(40, 1)
	sr := NewSerialRank(cfg)
	if _, err := sr.Step(1); err != nil {
		t.Fatal(err)
	}
	subs := make([]Summary, 0)
	_ = subs
	// Compare against a 4-rank run.
	s2, _, err := RunMPI(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	sr.Chunk.IdealGas(false)
	s1 := sr.Chunk.FieldSummary()
	if relDiff(s1.Mass, s2.Mass) > 1e-9 {
		t.Errorf("one-step mass differs: serial %.15e mpi %.15e", s1.Mass, s2.Mass)
	}
}

func TestSummaryPressureSigns(t *testing.T) {
	cfg := Small(32, 3)
	s, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pressure <= 0 || s.Volume <= 0 || s.Mass <= 0 || s.InternalEnergy <= 0 {
		t.Fatalf("non-physical summary: %+v", s)
	}
}
