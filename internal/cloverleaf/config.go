package cloverleaf

import "fmt"

// State defines one initial-condition region, mirroring clover.in state
// lines: a background state plus embedded energetic regions.
type State struct {
	Density float64
	Energy  float64
	XVel    float64
	YVel    float64
	// Geometry: rectangle [XMin,XMax] x [YMin,YMax] in physical
	// coordinates. The first state is the background and ignores these.
	XMin, XMax, YMin, YMax float64
}

// Config describes a CloverLeaf problem.
type Config struct {
	// GridX, GridY are the global cell counts.
	GridX, GridY int
	// Physical extents.
	XMin, XMax, YMin, YMax float64
	// States: States[0] is the background.
	States []State
	// EndStep terminates after this many steps.
	EndStep int
	// EndTime, when positive, terminates once the simulated time reaches
	// it (the timestep is clamped so the end time is hit exactly).
	EndTime float64
	// DtInit, DtMax, DtRise control the timestep ramp.
	DtInit, DtMax, DtRise float64
	// Gamma is the ideal-gas ratio of specific heats.
	Gamma float64
}

// Tiny returns the SPEChpc 2021 "Tiny" working set geometry
// (519.clvleaf_t: 15360^2 cells, 400 steps) with the standard CloverLeaf
// two-state setup scaled to the square domain.
func Tiny() Config {
	return Config{
		GridX: 15360, GridY: 15360,
		XMin: 0, XMax: 15.36, YMin: 0, YMax: 15.36,
		States: []State{
			{Density: 0.2, Energy: 1.0},
			{Density: 1.0, Energy: 2.5, XMin: 0, XMax: 7.68, YMin: 0, YMax: 3.84},
		},
		EndStep: 400,
		DtInit:  0.04, DtMax: 0.04, DtRise: 1.5,
		Gamma: 1.4,
	}
}

// Small returns a laptop-scale problem with the same physics, used by the
// examples and the test suite.
func Small(cells, steps int) Config {
	c := Tiny()
	c.GridX, c.GridY = cells, cells
	c.EndStep = steps
	// Keep the cell size of the Tiny set so dt scales identically.
	c.XMax = float64(cells) * 0.001
	c.YMax = c.XMax
	c.States[1].XMax = c.XMax / 2
	c.States[1].YMax = c.YMax / 4
	c.DtInit = 0.04 * float64(cells) / 15360
	c.DtMax = c.DtInit
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.GridX <= 0 || c.GridY <= 0:
		return errf("non-positive grid %dx%d", c.GridX, c.GridY)
	case c.XMax <= c.XMin || c.YMax <= c.YMin:
		return errf("empty physical domain")
	case len(c.States) == 0:
		return errf("no states")
	case c.EndStep <= 0:
		return errf("non-positive end step")
	case c.Gamma <= 1:
		return errf("gamma must exceed 1")
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("cloverleaf: "+format, args...)
}
