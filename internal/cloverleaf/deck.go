package cloverleaf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDeck reads a CloverLeaf input deck (the clover.in format used by
// the SPEChpc harness) and returns the corresponding Config. Supported
// directives: the *clover/*endclover block, state lines, x_cells,
// y_cells, xmin/xmax/ymin/ymax, initial_timestep, max_timestep,
// timestep_rise, end_step. Unknown keys are ignored (the real deck
// carries visit frequencies etc. that do not affect the solve).
func ParseDeck(r io.Reader) (Config, error) {
	cfg := Config{
		DtInit: 0.04, DtMax: 0.04, DtRise: 1.5,
		Gamma: 1.4,
	}
	states := map[int]State{}
	maxState := 0

	sc := bufio.NewScanner(r)
	inBlock := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case lower == "*clover":
			inBlock = true
			continue
		case lower == "*endclover":
			inBlock = false
			continue
		}
		if !inBlock {
			continue
		}

		if strings.HasPrefix(lower, "state") {
			idx, st, err := parseStateLine(line)
			if err != nil {
				return cfg, fmt.Errorf("cloverleaf: deck line %d: %w", lineNo, err)
			}
			states[idx] = st
			if idx > maxState {
				maxState = idx
			}
			continue
		}

		key, val, ok := splitKV(line)
		if !ok {
			continue // directives like "test_problem 2"
		}
		if err := applyKV(&cfg, key, val); err != nil {
			return cfg, fmt.Errorf("cloverleaf: deck line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return cfg, err
	}

	if maxState == 0 {
		return cfg, fmt.Errorf("cloverleaf: deck defines no states")
	}
	cfg.States = make([]State, maxState)
	for i := 1; i <= maxState; i++ {
		st, ok := states[i]
		if !ok {
			return cfg, fmt.Errorf("cloverleaf: deck is missing state %d", i)
		}
		cfg.States[i-1] = st
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// splitKV parses "key=value" tokens.
func splitKV(line string) (string, string, bool) {
	i := strings.IndexByte(line, '=')
	if i < 0 {
		return "", "", false
	}
	return strings.ToLower(strings.TrimSpace(line[:i])), strings.TrimSpace(line[i+1:]), true
}

func applyKV(cfg *Config, key, val string) error {
	switch key {
	case "x_cells":
		return parseInt(val, &cfg.GridX)
	case "y_cells":
		return parseInt(val, &cfg.GridY)
	case "xmin":
		return parseFloat(val, &cfg.XMin)
	case "xmax":
		return parseFloat(val, &cfg.XMax)
	case "ymin":
		return parseFloat(val, &cfg.YMin)
	case "ymax":
		return parseFloat(val, &cfg.YMax)
	case "initial_timestep":
		return parseFloat(val, &cfg.DtInit)
	case "max_timestep":
		return parseFloat(val, &cfg.DtMax)
	case "timestep_rise":
		return parseFloat(val, &cfg.DtRise)
	case "end_step":
		return parseInt(val, &cfg.EndStep)
	}
	return nil // ignore unknown keys
}

// parseStateLine handles e.g.
//
//	state 2 density=1.0 energy=2.5 geometry=rectangle xmin=0.0 xmax=5.0 ymin=0.0 ymax=2.0
func parseStateLine(line string) (int, State, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, State{}, fmt.Errorf("malformed state line %q", line)
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil || idx < 1 {
		return 0, State{}, fmt.Errorf("bad state index %q", fields[1])
	}
	var st State
	for _, tok := range fields[2:] {
		key, val, ok := splitKV(tok)
		if !ok {
			continue
		}
		var err error
		switch key {
		case "density":
			err = parseFloat(val, &st.Density)
		case "energy":
			err = parseFloat(val, &st.Energy)
		case "xvel":
			err = parseFloat(val, &st.XVel)
		case "yvel":
			err = parseFloat(val, &st.YVel)
		case "xmin":
			err = parseFloat(val, &st.XMin)
		case "xmax":
			err = parseFloat(val, &st.XMax)
		case "ymin":
			err = parseFloat(val, &st.YMin)
		case "ymax":
			err = parseFloat(val, &st.YMax)
		case "geometry":
			if val != "rectangle" {
				err = fmt.Errorf("unsupported geometry %q (only rectangle)", val)
			}
		}
		if err != nil {
			return 0, State{}, err
		}
	}
	return idx, st, nil
}

func parseInt(s string, out *int) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("bad integer %q", s)
	}
	*out = v
	return nil
}

func parseFloat(s string, out *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad float %q", s)
	}
	*out = v
	return nil
}

// FormatDeck renders a Config back into clover.in syntax (round-trip
// support for tooling and tests).
func FormatDeck(cfg Config) string {
	var b strings.Builder
	b.WriteString("*clover\n")
	for i, st := range cfg.States {
		fmt.Fprintf(&b, " state %d density=%g energy=%g", i+1, st.Density, st.Energy)
		if i > 0 {
			fmt.Fprintf(&b, " geometry=rectangle xmin=%g xmax=%g ymin=%g ymax=%g",
				st.XMin, st.XMax, st.YMin, st.YMax)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, " x_cells=%d\n y_cells=%d\n", cfg.GridX, cfg.GridY)
	fmt.Fprintf(&b, " xmin=%g\n ymin=%g\n xmax=%g\n ymax=%g\n", cfg.XMin, cfg.YMin, cfg.XMax, cfg.YMax)
	fmt.Fprintf(&b, " initial_timestep=%g\n max_timestep=%g\n timestep_rise=%g\n", cfg.DtInit, cfg.DtMax, cfg.DtRise)
	fmt.Fprintf(&b, " end_step=%d\n", cfg.EndStep)
	b.WriteString("*endclover\n")
	return b.String()
}
