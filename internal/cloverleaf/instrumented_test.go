package cloverleaf

import (
	"math"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/model"
)

// TestInstrumentedRunMatchesTable1: a real physics run with inline
// traffic replay yields the same single-core code balance as both the
// standalone traffic study and the paper's Table I.
func TestInstrumentedRunMatchesTable1(t *testing.T) {
	cfg := Small(96, 4)
	ir := NewInstrumentedSerialRank(cfg, InstrumentOptions{
		Machine: machine.ICX8360Y(),
		MaxRows: 32,
	})
	s, err := ir.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mass <= 0 {
		t.Fatal("physics side broke")
	}

	report := ir.BalanceReport()
	if len(report) != 22 {
		t.Fatalf("report covers %d loops", len(report))
	}
	// On the small grid rows are short relative to the Tiny set, so halo
	// overhead is larger; compare against LCF+WA with a loose bound.
	for _, row := range model.Table1 {
		got, ok := report[row.Name]
		if !ok {
			t.Fatalf("loop %s missing", row.Name)
		}
		pred := float64(row.BytesLCFWA())
		if e := math.Abs(got-pred) / pred; e > 0.25 {
			t.Errorf("%s: instrumented %.2f vs LCF+WA %.0f (%.0f%% off)",
				row.Name, got, pred, 100*e)
		}
	}

	// Marker call counts: integer-call loops ran every step, half-call
	// loops on alternating steps.
	if c := ir.Marker.Region("am04").Calls; c != int64(2*cfg.EndStep) {
		t.Errorf("am04 calls = %d, want %d", c, 2*cfg.EndStep)
	}
	if c := ir.Marker.Region("ac00").Calls; c != int64(cfg.EndStep/2) {
		t.Errorf("ac00 calls = %d, want %d", c, cfg.EndStep/2)
	}
}

// TestInstrumentedSpecI2MKnob: disabling the feature raises the measured
// traffic of evadable loops under saturation pressure.
func TestInstrumentedSpecI2MKnob(t *testing.T) {
	cfg := Small(96, 2)
	on := NewInstrumentedSerialRank(cfg, InstrumentOptions{
		Machine: machine.ICX8360Y(), ActiveRanks: 18, MaxRows: 24,
	})
	if _, err := on.Run(); err != nil {
		t.Fatal(err)
	}
	off := NewInstrumentedSerialRank(cfg, InstrumentOptions{
		Machine: machine.ICX8360Y(), ActiveRanks: 18, MaxRows: 24, SpecI2MOff: true,
	})
	if _, err := off.Run(); err != nil {
		t.Fatal(err)
	}
	bOn, bOff := on.BalanceReport(), off.BalanceReport()
	if bOn["am04"] >= bOff["am04"] {
		t.Errorf("SpecI2M on (%.2f) should beat off (%.2f) for am04",
			bOn["am04"], bOff["am04"])
	}
	// Class (iii) is knob-invariant.
	if math.Abs(bOn["am07"]-bOff["am07"]) > 0.5 {
		t.Errorf("am07 moved with the knob: %.2f vs %.2f", bOn["am07"], bOff["am07"])
	}
}

func TestRoundHelper(t *testing.T) {
	if round(0.5) != 1 || round(0.49) != 0 || round(1.9) != 2 {
		t.Fatal("round broken")
	}
}
