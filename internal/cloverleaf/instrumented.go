package cloverleaf

import (
	"math"

	"cloversim/internal/counters"
	"cloversim/internal/machine"
	"cloversim/internal/trace"
)

// InstrumentedRank couples a real physics rank with a simulated core:
// each hydro step advances the actual solver AND replays the hotspot
// loops' memory traffic through the cache simulator under LIKWID-style
// marker regions. This is the analogue of the paper's patched CloverLeaf
// build with ALL_HOTSPOT_LOOPS=ON — physics results and traffic
// measurements from the same run.
type InstrumentedRank struct {
	*Rank
	Exec   *trace.Executor
	Marker *counters.Marker

	loops []LoopInstance
	spec  *machine.Spec
}

// InstrumentOptions configures the measurement side.
type InstrumentOptions struct {
	Machine *machine.Spec
	// ActiveRanks sets the bandwidth-pressure context (how many cores
	// run concurrently); defaults to 1 (a serial measurement run).
	ActiveRanks int
	// Core is this rank's core index under compact pinning.
	Core int
	// NTStores / OptimizeLoops mirror the config.mk knobs.
	NTStores      bool
	OptimizeLoops bool
	SpecI2MOff    bool
	// MaxRows truncates the traffic replay's y extent (0 = full).
	MaxRows int
	Seed    uint64
}

// NewInstrumentedSerialRank builds an instrumented single-chunk solver.
func NewInstrumentedSerialRank(cfg Config, o InstrumentOptions) *InstrumentedRank {
	r := NewSerialRank(cfg)
	return instrument(r, o)
}

func instrument(r *Rank, o InstrumentOptions) *InstrumentedRank {
	spec := *o.Machine
	spec.I2M.Enabled = spec.I2M.Enabled && !o.SpecI2MOff
	if o.ActiveRanks <= 0 {
		o.ActiveRanks = 1
	}

	tc := NewTrafficChunk(r.Chunk.XMin, r.Chunk.XMax, r.Chunk.YMin, r.Chunk.YMax,
		o.MaxRows, true)
	loops := tc.HotspotLoops(o.OptimizeLoops)

	x := trace.NewExecutor(&spec)
	x.NTStores = o.NTStores
	x.SetEnv(trace.Env{
		Pressure:      spec.PressureAt(o.Core, o.ActiveRanks),
		NodeFraction:  float64(o.ActiveRanks) / float64(spec.Cores()),
		ActiveSockets: spec.ActiveSockets(o.ActiveRanks),
		PFOn:          true,
	})
	if o.Seed == 0 {
		o.Seed = 0x1257
	}
	x.E.Seed(o.Seed)

	return &InstrumentedRank{
		Rank:   r,
		Exec:   x,
		Marker: counters.NewMarker(x.H, counters.GroupSPECI2M),
		loops:  loops,
		spec:   &spec,
	}
}

// Step advances physics by one step and replays the corresponding
// traffic: integer-call loops replay every step, half-call loops on the
// step parity that matches their sweep.
func (ir *InstrumentedRank) Step(step int) (float64, error) {
	dt, err := ir.Rank.Step(step)
	if err != nil {
		return dt, err
	}
	xFirst := step%2 == 1
	for _, li := range ir.loops {
		calls := int(li.CallsPerStep)
		if li.CallsPerStep == 0.5 {
			// Sweep-order dependent loops: ac00/ac01 belong to x-first
			// steps, ac04/ac05 to y-first steps.
			isX := li.Loop.Name == "ac00" || li.Loop.Name == "ac01"
			if isX == xFirst {
				calls = 1
			}
		}
		for i := 0; i < calls; i++ {
			if _, err := ir.Exec.RunMarked(ir.Marker, li.Loop, li.Bounds); err != nil {
				return dt, err
			}
		}
	}
	return dt, nil
}

// Run advances the configured number of steps.
func (ir *InstrumentedRank) Run() (Summary, error) {
	for step := 1; step <= ir.cfg.EndStep; step++ {
		if _, err := ir.Step(step); err != nil {
			return Summary{}, err
		}
		if ir.cfg.EndTime > 0 && ir.simTime >= ir.cfg.EndTime-1e-15 {
			break
		}
	}
	return ir.GlobalSummary(), nil
}

// BalanceReport returns measured byte/it per hotspot loop, normalized by
// the inner cell count as the paper does. The y truncation of the replay
// is compensated by scaling with the true/truncated iteration ratio.
func (ir *InstrumentedRank) BalanceReport() map[string]float64 {
	out := map[string]float64{}
	fullTC := NewTrafficChunk(ir.Chunk.XMin, ir.Chunk.XMax, ir.Chunk.YMin, ir.Chunk.YMax, 0, true)
	fullLoops := fullTC.HotspotLoops(false)
	inner := float64(ir.Chunk.XSpan()) * float64(ir.Chunk.YSpan())
	for i, li := range ir.loops {
		r := ir.Marker.Region(li.Loop.Name)
		if r == nil || r.Calls == 0 {
			continue
		}
		scale := float64(fullLoops[i].Bounds.Iterations()) / float64(li.Bounds.Iterations())
		perCall := float64(r.C.TotalBytes()) * scale / float64(r.Calls)
		out[li.Loop.Name] = perCall / inner
	}
	return out
}

// round is a helper kept for future fractional call schedules.
func round(x float64) int { return int(math.Floor(x + 0.5)) }
