package cloverleaf

import (
	"strings"
	"testing"

	"cloversim/internal/machine"
)

// TestRunTrafficRecoversGroupPanic is the regression lock for the
// once-dead error path in RunTraffic: a panicking loop inside one rank
// group must come back as an error naming the group — failing one
// scenario — instead of killing the whole process (which, under
// sweepd, is a worker serving many campaigns).
func TestRunTrafficRecoversGroupPanic(t *testing.T) {
	trafficGroupHook = func(g *rankGroup) {
		panic("injected loop bug")
	}
	t.Cleanup(func() { trafficGroupHook = nil })

	o := TrafficOptions{
		Machine:     machine.ICX8360Y(),
		Ranks:       4,
		GridX:       512,
		GridY:       512,
		MaxRows:     4,
		HotspotOnly: true,
	}
	res, err := RunTraffic(o)
	if err == nil {
		t.Fatal("RunTraffic returned no error with every rank group panicking")
	}
	if res != nil {
		t.Fatalf("RunTraffic returned a result alongside the error: %+v", res)
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "injected loop bug") {
		t.Errorf("error %v does not carry the recovered panic", err)
	}

	// The first error is deterministic: the lowest-ranked group, not
	// whichever goroutine the scheduler finished first.
	if !strings.Contains(err.Error(), "rank group at rank 0") {
		t.Errorf("error %v, want the rank-0 group's error reported first", err)
	}

	// A healed run on the same options succeeds.
	trafficGroupHook = nil
	if _, err := RunTraffic(o); err != nil {
		t.Fatalf("healed RunTraffic failed: %v", err)
	}
}

// TestRunTrafficSingleGroupPanic: only one group panics; the error
// still surfaces (no lost failures) and names that group.
func TestRunTrafficSingleGroupPanic(t *testing.T) {
	trafficGroupHook = func(g *rankGroup) {
		if g.firstRank != 0 {
			panic("injected bug in a non-first group")
		}
	}
	t.Cleanup(func() { trafficGroupHook = nil })

	o := TrafficOptions{
		Machine:     machine.ICX8360Y(),
		Ranks:       6, // decomposes into multiple subdomain shapes
		GridX:       512,
		GridY:       512,
		MaxRows:     4,
		HotspotOnly: true,
	}
	_, err := RunTraffic(o)
	if err == nil {
		t.Skip("decomposition produced a single rank group; nothing panicked")
	}
	if !strings.Contains(err.Error(), "injected bug in a non-first group") {
		t.Errorf("error %v does not carry the recovered panic", err)
	}
}
