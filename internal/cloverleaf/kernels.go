package cloverleaf

import "math"

// The kernels below follow the structure of the CloverLeaf reference
// implementation (ideal_gas_kernel.f90 etc.). Loop bounds use the same
// extensions as the Fortran code; all arithmetic is double precision.

// IdealGas computes pressure and sound speed from an equation of state
// p = (gamma-1) * rho * e, on (density0,energy0) if predict is false or
// (density1,energy1) if predict is true.
func (c *Chunk) IdealGas(predict bool) {
	den, en := c.Density0, c.Energy0
	if predict {
		den, en = c.Density1, c.Energy1
	}
	g1 := c.cfg.Gamma - 1
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			d := den.At(j, k)
			e := en.At(j, k)
			p := g1 * d * e
			c.Pressure.Set(j, k, p)
			v := 1.0 / d
			pe := g1 * d
			pv := -d * p * v * v // dp/dv at constant e for gamma law
			ss2 := v * v * (p*pe - pv)
			c.SoundSpeed.Set(j, k, math.Sqrt(math.Max(ss2, 1e-30)))
		}
	})
}

// CalcViscosity computes the artificial (tensor) viscous pressure
// (viscosity_kernel).
func (c *Chunk) CalcViscosity() {
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			ugrad := c.XVel0.At(j+1, k) + c.XVel0.At(j+1, k+1) - c.XVel0.At(j, k) - c.XVel0.At(j, k+1)
			vgrad := c.YVel0.At(j, k+1) + c.YVel0.At(j+1, k+1) - c.YVel0.At(j, k) - c.YVel0.At(j+1, k)

			div := c.CellDX.At(j)*0.5*ugrad + c.CellDY.At(k)*0.5*vgrad

			strain2 := 0.5*(c.XVel0.At(j, k+1)+c.XVel0.At(j+1, k+1)-c.XVel0.At(j, k)-c.XVel0.At(j+1, k))/c.CellDY.At(k) +
				0.5*(c.YVel0.At(j+1, k)+c.YVel0.At(j+1, k+1)-c.YVel0.At(j, k)-c.YVel0.At(j, k+1))/c.CellDX.At(j)

			pgradx := (c.Pressure.At(j+1, k) - c.Pressure.At(j-1, k)) / (c.CellDX.At(j) + c.CellDX.At(j+1))
			pgrady := (c.Pressure.At(j, k+1) - c.Pressure.At(j, k-1)) / (c.CellDY.At(k) + c.CellDY.At(k+1))

			pgradx2 := pgradx * pgradx
			pgrady2 := pgrady * pgrady

			limiter := (0.5*ugrad/c.CellDX.At(j)*pgradx2 +
				0.5*vgrad/c.CellDY.At(k)*pgrady2 +
				strain2*pgradx*pgrady) /
				math.Max(pgradx2+pgrady2, 1e-16)

			if limiter > 0 || div >= 0 {
				c.Viscosity.Set(j, k, 0)
				continue
			}
			pgx := math.Sqrt(pgradx2 + 1e-16)
			pgy := math.Sqrt(pgrady2 + 1e-16)
			pgrad := math.Sqrt(pgradx2 + pgrady2)
			xgrad := math.Abs(c.CellDX.At(j) * pgrad / pgx)
			ygrad := math.Abs(c.CellDY.At(k) * pgrad / pgy)
			grad := math.Min(xgrad, ygrad)
			grad2 := grad * grad

			c.Viscosity.Set(j, k, 2.0*c.Density0.At(j, k)*grad2*limiter*limiter)
		}
	})
}

// CalcDt returns the stable timestep for the chunk (calc_dt_kernel): the
// minimum over cells of sound-speed and velocity CFL limits.
func (c *Chunk) CalcDt() float64 {
	const (
		gSmall    = 1e-16
		bigNum    = 1e21
		dtCSafe   = 0.7
		dtUSafe   = 0.5
		dtVSafe   = 0.5
		dtDivSafe = 0.7
	)
	dtMin := c.parKMin(c.YMin, c.YMax, func(k int) float64 {
		rowMin := bigNum
		for j := c.XMin; j <= c.XMax; j++ {
			dsx := c.CellDX.At(j)
			dsy := c.CellDY.At(k)

			cc := c.SoundSpeed.At(j, k)*c.SoundSpeed.At(j, k) +
				2.0*c.Viscosity.At(j, k)/c.Density0.At(j, k)
			cc = math.Max(math.Sqrt(cc), gSmall)

			dtct := dtCSafe * math.Min(dsx, dsy) / cc

			div := 0.0
			// x velocity CFL
			du1 := math.Min(c.XVel0.At(j, k), c.XVel0.At(j, k+1))
			du2 := math.Max(c.XVel0.At(j+1, k), c.XVel0.At(j+1, k+1))
			div += du2 - du1
			dtut := dtUSafe * 2.0 * c.Volume.At(j, k) /
				math.Max(math.Max(math.Abs(du1), math.Abs(du2)), gSmall*c.Volume.At(j, k)) / dsy

			// y velocity CFL
			dv1 := math.Min(c.YVel0.At(j, k), c.YVel0.At(j+1, k))
			dv2 := math.Max(c.YVel0.At(j, k+1), c.YVel0.At(j+1, k+1))
			div += dv2 - dv1
			dtvt := dtVSafe * 2.0 * c.Volume.At(j, k) /
				math.Max(math.Max(math.Abs(dv1), math.Abs(dv2)), gSmall*c.Volume.At(j, k)) / dsx

			div /= 2.0 * math.Max(dsx, dsy)
			dtdivt := bigNum
			if div < -gSmall {
				dtdivt = dtDivSafe * (-1.0 / div)
			}

			rowMin = math.Min(rowMin, math.Min(math.Min(dtct, dtut), math.Min(dtvt, dtdivt)))
		}
		return rowMin
	})
	return math.Min(dtMin, bigNum)
}

// PdV advances density and energy by the volume change implied by the
// node velocities (PdV_kernel). predict uses half a timestep and the
// time-level-0 velocities only.
func (c *Chunk) PdV(predict bool, dt float64) {
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			var leftFlux, rightFlux, bottomFlux, topFlux float64
			if predict {
				h := dt * 0.5
				leftFlux = c.XArea.At(j, k) * (c.XVel0.At(j, k) + c.XVel0.At(j, k+1) +
					c.XVel0.At(j, k) + c.XVel0.At(j, k+1)) * 0.25 * h
				rightFlux = c.XArea.At(j+1, k) * (c.XVel0.At(j+1, k) + c.XVel0.At(j+1, k+1) +
					c.XVel0.At(j+1, k) + c.XVel0.At(j+1, k+1)) * 0.25 * h
				bottomFlux = c.YArea.At(j, k) * (c.YVel0.At(j, k) + c.YVel0.At(j+1, k) +
					c.YVel0.At(j, k) + c.YVel0.At(j+1, k)) * 0.25 * h
				topFlux = c.YArea.At(j, k+1) * (c.YVel0.At(j, k+1) + c.YVel0.At(j+1, k+1) +
					c.YVel0.At(j, k+1) + c.YVel0.At(j+1, k+1)) * 0.25 * h
			} else {
				leftFlux = c.XArea.At(j, k) * (c.XVel0.At(j, k) + c.XVel0.At(j, k+1) +
					c.XVel1.At(j, k) + c.XVel1.At(j, k+1)) * 0.25 * dt
				rightFlux = c.XArea.At(j+1, k) * (c.XVel0.At(j+1, k) + c.XVel0.At(j+1, k+1) +
					c.XVel1.At(j+1, k) + c.XVel1.At(j+1, k+1)) * 0.25 * dt
				bottomFlux = c.YArea.At(j, k) * (c.YVel0.At(j, k) + c.YVel0.At(j+1, k) +
					c.YVel1.At(j, k) + c.YVel1.At(j+1, k)) * 0.25 * dt
				topFlux = c.YArea.At(j, k+1) * (c.YVel0.At(j, k+1) + c.YVel0.At(j+1, k+1) +
					c.YVel1.At(j, k+1) + c.YVel1.At(j+1, k+1)) * 0.25 * dt
			}

			totalFlux := rightFlux - leftFlux + topFlux - bottomFlux
			volumeChange := c.Volume.At(j, k) / (c.Volume.At(j, k) + totalFlux)

			recipVolume := 1.0 / c.Volume.At(j, k)
			energyChange := (c.Pressure.At(j, k)/c.Density0.At(j, k) +
				c.Viscosity.At(j, k)/c.Density0.At(j, k)) * totalFlux * recipVolume

			c.Energy1.Set(j, k, c.Energy0.At(j, k)-energyChange)
			c.Density1.Set(j, k, c.Density0.At(j, k)*volumeChange)
		}
	})
}

// Accelerate updates the node velocities from pressure and viscosity
// gradients (accelerate_kernel).
func (c *Chunk) Accelerate(dt float64) {
	halfDt := 0.5 * dt
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			nodalMass := (c.Density0.At(j-1, k-1)*c.Volume.At(j-1, k-1) +
				c.Density0.At(j, k-1)*c.Volume.At(j, k-1) +
				c.Density0.At(j, k)*c.Volume.At(j, k) +
				c.Density0.At(j-1, k)*c.Volume.At(j-1, k)) * 0.25
			stepByMass := halfDt / nodalMass

			xv := c.XVel0.At(j, k) - stepByMass*(c.XArea.At(j, k)*(c.Pressure.At(j, k)-c.Pressure.At(j-1, k))+
				c.XArea.At(j, k-1)*(c.Pressure.At(j, k-1)-c.Pressure.At(j-1, k-1)))
			yv := c.YVel0.At(j, k) - stepByMass*(c.YArea.At(j, k)*(c.Pressure.At(j, k)-c.Pressure.At(j, k-1))+
				c.YArea.At(j-1, k)*(c.Pressure.At(j-1, k)-c.Pressure.At(j-1, k-1)))

			xv -= stepByMass * (c.XArea.At(j, k)*(c.Viscosity.At(j, k)-c.Viscosity.At(j-1, k)) +
				c.XArea.At(j, k-1)*(c.Viscosity.At(j, k-1)-c.Viscosity.At(j-1, k-1)))
			yv -= stepByMass * (c.YArea.At(j, k)*(c.Viscosity.At(j, k)-c.Viscosity.At(j, k-1)) +
				c.YArea.At(j-1, k)*(c.Viscosity.At(j-1, k)-c.Viscosity.At(j-1, k-1)))

			c.XVel1.Set(j, k, xv)
			c.YVel1.Set(j, k, yv)
		}
	})
}

// FluxCalc computes the volume fluxes through cell faces (flux_calc_kernel).
func (c *Chunk) FluxCalc(dt float64) {
	q := 0.25 * dt
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			c.VolFluxX.Set(j, k, q*c.XArea.At(j, k)*
				(c.XVel0.At(j, k)+c.XVel0.At(j, k+1)+c.XVel1.At(j, k)+c.XVel1.At(j, k+1)))
		}
	})
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			c.VolFluxY.Set(j, k, q*c.YArea.At(j, k)*
				(c.YVel0.At(j, k)+c.YVel0.At(j+1, k)+c.YVel1.At(j, k)+c.YVel1.At(j+1, k)))
		}
	})
}

// ResetField copies the time-level-1 fields back to level 0
// (reset_field_kernel).
func (c *Chunk) ResetField() {
	c.parK(c.YMin, c.YMax, func(k int) {
		for j := c.XMin; j <= c.XMax; j++ {
			c.Density0.Set(j, k, c.Density1.At(j, k))
			c.Energy0.Set(j, k, c.Energy1.At(j, k))
		}
	})
	c.parK(c.YMin, c.YMax+1, func(k int) {
		for j := c.XMin; j <= c.XMax+1; j++ {
			c.XVel0.Set(j, k, c.XVel1.At(j, k))
			c.YVel0.Set(j, k, c.YVel1.At(j, k))
		}
	})
}
