package cloverleaf

import (
	"math"
	"testing"

	"cloversim/internal/riemann"
)

// sodConfig builds the Sod shock tube as a quasi-1D CloverLeaf problem:
// a [0,1] x [0,h] domain with the diaphragm at x = 0.5, left state
// rho=1, p=1 (e=2.5), right state rho=0.125, p=0.1 (e=2.0).
func sodConfig(nx, ny, steps int, endTime float64) Config {
	return Config{
		GridX: nx, GridY: ny,
		XMin: 0, XMax: 1, YMin: 0, YMax: float64(ny) / float64(nx),
		States: []State{
			{Density: 0.125, Energy: 2.0},                                     // right/background
			{Density: 1.0, Energy: 2.5, XMin: 0, XMax: 0.5, YMin: 0, YMax: 1}, // left
		},
		EndStep: steps,
		EndTime: endTime,
		DtInit:  2e-4, DtMax: 2e-3, DtRise: 1.5,
		Gamma: 1.4,
	}
}

// TestSodShockTube validates the full 2D solver against the exact
// Riemann solution at t = 0.2: plateau densities, wave positions and the
// contact velocity must match within discretization error.
func TestSodShockTube(t *testing.T) {
	if testing.Short() {
		t.Skip("Sod tube takes a few seconds")
	}
	nx := 400
	cfg := sodConfig(nx, 8, 100000, 0.2)
	r := NewSerialRank(cfg)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Time()-0.2) > 1e-12 {
		t.Fatalf("end time %g, want 0.2", r.Time())
	}

	exact, err := riemann.Sod().Solve()
	if err != nil {
		t.Fatal(err)
	}

	kMid := r.Chunk.YMin + r.Chunk.YSpan()/2
	density := func(x float64) float64 {
		j := r.Chunk.XMin + int(x*float64(nx))
		return r.Chunk.Density0.At(j, kMid)
	}

	// Plateau checks away from the discontinuities (positions at t=0.2:
	// rarefaction 0.263..0.486, contact 0.685, shock 0.850).
	cases := []struct {
		x, want, tol float64
		name         string
	}{
		{0.15, 1.0, 0.02, "undisturbed left"},
		{0.40, exact.Sample((0.40 - 0.5) / 0.2).Rho, 0.05, "inside rarefaction"},
		{0.58, 0.42632, 0.05, "left star plateau"},
		{0.76, 0.26557, 0.07, "right star plateau"},
		{0.95, 0.125, 0.02, "undisturbed right"},
	}
	for _, c := range cases {
		got := density(c.x)
		if rel := math.Abs(got-c.want) / c.want; rel > c.tol {
			t.Errorf("%s: rho(%.2f) = %.4f, exact %.4f (%.1f%% off)",
				c.name, c.x, got, c.want, 100*rel)
		}
	}

	// Shock position: find where density crosses the mid-point between
	// the star and right states; must be near x = 0.5 + 1.75216*0.2.
	target := (0.26557 + 0.125) / 2
	shockX := 0.0
	for j := r.Chunk.XMin; j < r.Chunk.XMax; j++ {
		if r.Chunk.Density0.At(j, kMid) > target && r.Chunk.Density0.At(j+1, kMid) <= target {
			shockX = (float64(j-r.Chunk.XMin) + 0.5) / float64(nx)
		}
	}
	wantShock := 0.5 + 1.75216*0.2
	if math.Abs(shockX-wantShock) > 0.03 {
		t.Errorf("shock at x = %.3f, exact %.3f", shockX, wantShock)
	}

	// Contact velocity: the post-shock plateau moves at u* = 0.92745.
	// Node velocity at x = 0.76.
	j := r.Chunk.XMin + int(0.76*float64(nx))
	u := r.Chunk.XVel0.At(j, kMid)
	if math.Abs(u-0.92745) > 0.06 {
		t.Errorf("star velocity = %.4f, exact 0.92745", u)
	}

	// The tube is 1D: no y velocity develops in the interior.
	maxV := 0.0
	for j := r.Chunk.XMin + 5; j <= r.Chunk.XMax-5; j++ {
		maxV = math.Max(maxV, math.Abs(r.Chunk.YVel0.At(j, kMid)))
	}
	if maxV > 1e-8 {
		t.Errorf("1D problem developed y velocity %g", maxV)
	}
}

// TestEndTimeClamping: the driver hits EndTime exactly and stops.
func TestEndTimeClamping(t *testing.T) {
	cfg := sodConfig(64, 4, 100000, 0.01)
	r := NewSerialRank(cfg)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Time()-0.01) > 1e-12 {
		t.Fatalf("end time %g, want exactly 0.01", r.Time())
	}
}
