package cloverleaf

import (
	"math"
	"sort"

	"cloversim/internal/decomp"
	"cloversim/internal/mpi"
)

// NodeModel is the modeled execution of one hydro step on the node:
// compute (Roofline) time per rank, modeled MPI time, achieved bandwidth,
// and the per-kernel profile. It feeds the Fig. 2 scaling curve, the
// Listing 2 profile and the Fig. 4 MPI share breakdown.
type NodeModel struct {
	Ranks int
	// StepSeconds is the slowest rank's compute time for one step.
	StepSeconds float64
	// MPIPerStep is the modeled per-rank MPI time of one step.
	MPIPerStep mpi.Times
	// TotalStepSeconds includes MPI.
	TotalStepSeconds float64
	// BandwidthBytes is the achieved node memory bandwidth during compute.
	BandwidthBytes float64
	// KernelSeconds is the aggregate (all-rank) CPU time per step per
	// kernel — the Listing 2 profile.
	KernelSeconds map[string]float64
	// Traffic is the underlying per-loop traffic study.
	Traffic *TrafficResult
}

// SerialShare returns the fraction of runtime outside MPI (Fig. 4 "Serial").
func (m *NodeModel) SerialShare() float64 {
	return m.StepSeconds / m.TotalStepSeconds
}

// ModelNode runs the traffic study and applies the bandwidth/Roofline
// time model for the given configuration.
func ModelNode(o TrafficOptions) (*NodeModel, error) {
	tr, err := RunTraffic(o)
	if err != nil {
		return nil, err
	}
	spec := o.Machine
	n := o.Ranks

	// Per-core bandwidth share of the most-contended domain: cores in a
	// saturated domain split its bandwidth evenly; cores in a partially
	// filled domain get their full single-core bandwidth.
	minShare := spec.Mem.CoreBandwidth
	for d := 0; d < spec.NUMADomains(); d++ {
		a := spec.ActiveInDomain(n, d)
		if a == 0 {
			continue
		}
		share := spec.Mem.Bandwidth(a) / float64(a)
		if share < minShare {
			minShare = share
		}
	}

	// Compute time: each loop's slowest-rank time is its per-rank volume
	// over the minimum bandwidth share, floored by in-core throughput.
	peakFlops := spec.FreqHz * spec.FlopsPerCycle
	step := 0.0
	kernels := map[string]float64{}
	// Iterate in sorted loop order: the float sums must be bit-identical
	// across runs for byte-stable sweep output.
	for _, name := range tr.LoopNames() {
		l := tr.Loops[name]
		volRank := l.TotalBytes() / float64(n)
		tMem := volRank / minShare
		tCore := float64(l.FlopsPerIt) * l.Iters / float64(n) / peakFlops
		// Loops with little memory traffic (e.g. reductions) still pay
		// a per-iteration instruction cost of about 1 cycle.
		tCore = math.Max(tCore, l.Iters/float64(n)/spec.FreqHz)
		t := math.Max(tMem, tCore) * l.CallsPerStep
		step += t
		kernels[l.Kernel] += t * float64(n) // aggregate CPU seconds
	}

	// MPI model: halo exchanges per step from the driver schedule, plus
	// synchronization/imbalance time proportional to the subdomain
	// surface-to-volume ratio. The paper's ITAC traces (Fig. 4) put the
	// MPI share at 1-6% of the runtime, split roughly 2/3 Waitall and
	// 1/3 Allreduce; 1D (prime) decompositions with their long thin
	// subdomains sync at least twice as much as their neighbors.
	mpiT := modelMPI(o, spec.MPILatency, spec.MPIBandwidth, spec.AllreduceLatency)
	if n > 1 {
		const syncCoef = 6.0
		sync := syncCoef * surfaceToVolume(o) * step
		mpiT.Waitall += sync * 2 / 3
		mpiT.Allreduce += sync / 3
	}

	m := &NodeModel{
		Ranks:            n,
		StepSeconds:      step,
		MPIPerStep:       mpiT,
		TotalStepSeconds: step + mpiT.Total(),
		KernelSeconds:    kernels,
		Traffic:          tr,
	}
	if m.StepSeconds > 0 {
		m.BandwidthBytes = tr.BytesPerStep() / m.StepSeconds
	}
	return m, nil
}

// haloPhase describes one update_halo call of the hydro cycle.
type haloPhase struct {
	fields int
	depth  int
}

// haloSchedule mirrors Rank.Step's sequence of halo exchanges (averaged
// over the two sweep orders, which are symmetric).
var haloSchedule = []haloPhase{
	{5, 2}, // timestep: pressure, energy0, density0, xvel0, yvel0
	{1, 1}, // viscosity
	{1, 1}, // pressure after predictor EOS
	{2, 1}, // xvel1, yvel1 after accelerate
	{4, 2}, // vol fluxes + density1/energy1 before advection
	{3, 2}, // after first cell sweep
	{5, 2}, // before second momentum sweep
}

// surfaceToVolume returns the median subdomain's halo-perimeter-to-area
// ratio for the decomposition.
func surfaceToVolume(o TrafficOptions) float64 {
	o.defaults()
	subs := decomp.Decompose(o.Ranks, o.GridX, o.GridY)
	s := subs[len(subs)/2]
	return 2 * float64(s.XSpan()+s.YSpan()) / (float64(s.XSpan()) * float64(s.YSpan()))
}

// modelMPI returns the modeled per-rank MPI time of one step for the
// worst-placed rank (interior: 4 neighbors; 1D decompositions: 2).
func modelMPI(o TrafficOptions, latency, bandwidth, redLatency float64) mpi.Times {
	o.defaults()
	subs := decomp.Decompose(o.Ranks, o.GridX, o.GridY)
	cx, _ := decomp.Factorize(o.Ranks, o.GridX, o.GridY)
	cy := o.Ranks / cx

	// Use the median subdomain shape.
	xs := make([]int, len(subs))
	ys := make([]int, len(subs))
	for i, s := range subs {
		xs[i], ys[i] = s.XSpan(), s.YSpan()
	}
	sort.Ints(xs)
	sort.Ints(ys)
	xspan, yspan := xs[len(xs)/2], ys[len(ys)/2]

	var t mpi.Times
	if o.Ranks == 1 {
		return t
	}
	hasX := cx > 1
	hasY := cy > 1
	for _, ph := range haloSchedule {
		msgs := 0
		var vol float64
		if hasX {
			msgs += 2 * ph.fields // send+recv pairs both sides counted as Wait latencies
			vol += 2 * float64(ph.depth) * float64(yspan+4) * 8 * float64(ph.fields)
		}
		if hasY {
			msgs += 2 * ph.fields
			vol += 2 * float64(ph.depth) * float64(xspan+4) * 8 * float64(ph.fields)
		}
		t.Isend += float64(msgs) * 0.2e-6
		t.Waitall += float64(msgs)*latency + vol/bandwidth
	}
	stages := math.Ceil(math.Log2(float64(o.Ranks)))
	t.Allreduce = 2 * stages * redLatency // dt reduction
	t.Reduce = 0.1 * stages * redLatency  // occasional field summaries
	t.Barrier = 0
	return t
}

// ScalingPoint is one entry of the Fig. 2 curve.
type ScalingPoint struct {
	Ranks          int
	Speedup        float64
	BandwidthGBs   float64
	StepSeconds    float64
	MPISeconds     float64
	Prime          bool
	InnerDimension int
}

// ScalingCurve models ranks 1..maxRanks and returns speedup and achieved
// bandwidth per rank count (Fig. 2).
func ScalingCurve(base TrafficOptions, maxRanks int) ([]ScalingPoint, error) {
	var serial float64
	out := make([]ScalingPoint, 0, maxRanks)
	for n := 1; n <= maxRanks; n++ {
		o := base
		o.Ranks = n
		m, err := ModelNode(o)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			serial = m.TotalStepSeconds
		}
		out = append(out, ScalingPoint{
			Ranks:          n,
			Speedup:        serial / m.TotalStepSeconds,
			BandwidthGBs:   m.BandwidthBytes / 1e9,
			StepSeconds:    m.StepSeconds,
			MPISeconds:     m.MPIPerStep.Total(),
			Prime:          decomp.IsPrime(n),
			InnerDimension: decomp.InnerDim(n, o.GridX, o.GridY),
		})
	}
	return out, nil
}
