package cloverleaf

import (
	"math"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/model"
)

// TestSpecsMatchTable1Counts verifies that the encoded stencil offsets of
// all 22 hotspot loops reproduce the element counts of the paper's
// Table I exactly (arrays, RD_LCF, RD_LCB, WR, RD&WR, flops).
func TestSpecsMatchTable1Counts(t *testing.T) {
	tc := NewTrafficChunk(1, 128, 1, 64, 0, true)
	loops := tc.HotspotLoops(false)
	if len(loops) != 22 {
		t.Fatalf("%d hotspot loops, want 22", len(loops))
	}
	for _, li := range loops {
		want, ok := model.Table1ByName(li.Loop.Name)
		if !ok {
			t.Fatalf("loop %s not in Table 1", li.Loop.Name)
		}
		got := model.FromLoop(li.Loop)
		if got.Arrays != want.Arrays {
			t.Errorf("%s: arrays %d, want %d", li.Loop.Name, got.Arrays, want.Arrays)
		}
		if got.RDLCF != want.RDLCF {
			t.Errorf("%s: RD_LCF %d, want %d", li.Loop.Name, got.RDLCF, want.RDLCF)
		}
		if got.RDLCB != want.RDLCB {
			t.Errorf("%s: RD_LCB %d, want %d", li.Loop.Name, got.RDLCB, want.RDLCB)
		}
		if got.WR != want.WR {
			t.Errorf("%s: WR %d, want %d", li.Loop.Name, got.WR, want.WR)
		}
		if got.RDWR != want.RDWR {
			t.Errorf("%s: RD&WR %d, want %d", li.Loop.Name, got.RDWR, want.RDWR)
		}
		if got.FlopsIt != want.FlopsIt {
			t.Errorf("%s: flops %d, want %d", li.Loop.Name, got.FlopsIt, want.FlopsIt)
		}
	}
}

// TestHotspotEligibility: the paper found ac01/ac05 (simple copies) and
// ac02/ac06 (branchy) are not SpecI2M-eligible on ICX; restructuring
// recovers ac01/ac05 only.
func TestHotspotEligibility(t *testing.T) {
	tc := NewTrafficChunk(1, 64, 1, 32, 0, true)
	byName := func(loops []LoopInstance) map[string]*LoopInstance {
		m := map[string]*LoopInstance{}
		for i := range loops {
			m[loops[i].Loop.Name] = &loops[i]
		}
		return m
	}
	orig := byName(tc.HotspotLoops(false))
	for _, n := range []string{"ac01", "ac02", "ac05", "ac06"} {
		if orig[n].Loop.Eligible {
			t.Errorf("%s should be ineligible in the original code", n)
		}
	}
	opt := byName(tc.HotspotLoops(true))
	for _, n := range []string{"ac01", "ac05"} {
		if !opt[n].Loop.Eligible {
			t.Errorf("%s should be eligible after restructuring", n)
		}
	}
	for _, n := range []string{"ac02", "ac06"} {
		if opt[n].Loop.Eligible {
			t.Errorf("%s must stay ineligible (conditional branches)", n)
		}
	}
}

// TestCallsPerStepBudget: the per-step call counts must add up to the
// hydro cycle (each vol variant once, x/y sweeps twice for two velocity
// components, cell sweeps alternating).
func TestCallsPerStepBudget(t *testing.T) {
	tc := NewTrafficChunk(1, 64, 1, 32, 0, true)
	want := map[string]float64{
		"am00": 1, "am01": 1, "am02": 1, "am03": 1,
		"am04": 2, "am05": 2, "am06": 2, "am07": 2,
		"am08": 2, "am09": 2, "am10": 2, "am11": 2,
		"ac00": 0.5, "ac01": 0.5, "ac02": 1, "ac03": 1,
		"ac04": 0.5, "ac05": 0.5, "ac06": 1, "ac07": 1,
		"pdv00": 1, "pdv01": 1,
	}
	for _, li := range tc.HotspotLoops(false) {
		if got := li.CallsPerStep; got != want[li.Loop.Name] {
			t.Errorf("%s: calls/step %g, want %g", li.Loop.Name, got, want[li.Loop.Name])
		}
	}
}

// TestSingleCoreBalanceMatchesPaper is the headline Table I validation:
// the simulated single-core code balance of every hotspot loop must match
// the paper's measured byte/it_meas,1 within 3%.
func TestSingleCoreBalanceMatchesPaper(t *testing.T) {
	res, err := RunTraffic(TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 1, MaxRows: 32,
		AlignArrays: true, HotspotOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range model.Table1 {
		lt := res.Loop(row.Name)
		if lt == nil {
			t.Fatalf("loop %s missing", row.Name)
		}
		got := lt.BytesPerIt(res.InnerCells)
		err := math.Abs(got-row.MeasuredSingleCore) / row.MeasuredSingleCore
		if err > 0.03 {
			t.Errorf("%s: simulated %.2f byte/it vs paper %.2f (%.1f%% off)",
				row.Name, got, row.MeasuredSingleCore, 100*err)
		}
	}
}

// TestFullNodeRefinedModel: at 72 ranks the eligible loops must sit near
// the paper's refined prediction (factor 1.2), ineligible loops near the
// no-SpecI2M prediction, and class-(iii) loops must be invariant.
func TestFullNodeRefinedModel(t *testing.T) {
	res, err := RunTraffic(TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 72, MaxRows: 32,
		AlignArrays: true, HotspotOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ineligible := map[string]bool{"ac01": true, "ac02": true, "ac05": true, "ac06": true}
	for _, row := range model.Table1 {
		got := res.Loop(row.Name).BytesPerIt(res.InnerCells)
		pred := row.RefinedPrediction(1.2, !ineligible[row.Name])
		if e := math.Abs(got-pred) / pred; e > 0.08 {
			t.Errorf("%s: full-node %.2f vs refined prediction %.2f (%.1f%% off)",
				row.Name, got, pred, 100*e)
		}
	}
	// Class (iii) loops have no evadable writes: identical at 1 and 72.
	for _, n := range []string{"am07", "am11", "ac03", "ac07"} {
		row, _ := model.Table1ByName(n)
		got := res.Loop(n).BytesPerIt(res.InnerCells)
		if e := math.Abs(got-float64(row.BytesLCFWA())) / float64(row.BytesLCFWA()); e > 0.03 {
			t.Errorf("class-(iii) loop %s moved to %.2f at 72 ranks", n, got)
		}
	}
}

// TestPrimeNumberEffect: the paper's central finding — at prime rank
// counts the class-(i) loops lose SpecI2M evasion and read volume rises.
func TestPrimeNumberEffect(t *testing.T) {
	run := func(ranks int) *TrafficResult {
		res, err := RunTraffic(TrafficOptions{
			Machine: machine.ICX8360Y(), Ranks: ranks, MaxRows: 32,
			AlignArrays: true, HotspotOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r71, r72 := run(71), run(72)
	// Class (i) loops: am04, am06, am08, am10 show the strongest effect.
	for _, n := range []string{"am04", "am06", "am08", "am10"} {
		read71 := r71.Loop(n).ReadPerIt(r71.InnerCells)
		read72 := r72.Loop(n).ReadPerIt(r72.InnerCells)
		if read71 <= read72*1.02 {
			t.Errorf("%s: prime-rank read volume %.2f not above 72-rank %.2f",
				n, read71, read72)
		}
	}
	// Aggregate volume per step must be higher at 71 ranks than at 72.
	if r71.BytesPerStep() <= r72.BytesPerStep() {
		t.Errorf("prime step volume %.3g not above non-prime %.3g",
			r71.BytesPerStep(), r72.BytesPerStep())
	}
}

// TestSpecI2MOffFlattens: with the feature disabled the code balance
// stays at the single-core value for every rank count, and the prime
// effect (mostly) disappears — the paper's MSR experiment.
func TestSpecI2MOffFlattens(t *testing.T) {
	run := func(ranks int) *TrafficResult {
		res, err := RunTraffic(TrafficOptions{
			Machine: machine.ICX8360Y(), Ranks: ranks, MaxRows: 32,
			AlignArrays: true, HotspotOnly: true, SpecI2MOff: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r71, r72 := run(1), run(71), run(72)
	for _, n := range []string{"am04", "am00", "pdv00"} {
		b1 := r1.Loop(n).BytesPerIt(r1.InnerCells)
		b72 := r72.Loop(n).BytesPerIt(r72.InnerCells)
		if math.Abs(b72-b1)/b1 > 0.03 {
			t.Errorf("%s: SpecI2M-off balance moved %g -> %g across ranks", n, b1, b72)
		}
		// The residual prime overhead is only halo traffic (a few %).
		b71 := r71.Loop(n).BytesPerIt(r71.InnerCells)
		if (b71-b72)/b72 > 0.06 {
			t.Errorf("%s: prime effect persists with SpecI2M off: %g vs %g", n, b71, b72)
		}
	}
}

// TestNTStoresReduceBalance: the optimized build must lower the total
// hotspot code balance (paper: 5.8% on average, max 23.2% per loop).
func TestNTStoresReduceBalance(t *testing.T) {
	base := TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 72, MaxRows: 32,
		AlignArrays: true, HotspotOnly: true,
	}
	orig, err := RunTraffic(base)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.NTStores = true
	opt.OptimizeLoops = true
	best, err := RunTraffic(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sumO, sumB, maxGain float64
	for _, row := range model.Table1 {
		o := orig.Loop(row.Name).BytesPerIt(orig.InnerCells)
		b := best.Loop(row.Name).BytesPerIt(best.InnerCells)
		sumO += o
		sumB += b
		if g := (o - b) / o; g > maxGain {
			maxGain = g
		}
	}
	gain := 1 - sumB/sumO
	if gain < 0.02 || gain > 0.12 {
		t.Errorf("optimized build gain %.1f%%, want a few percent (paper: 5.8%%)", 100*gain)
	}
	if maxGain < 0.10 {
		t.Errorf("max per-loop gain %.1f%%, want >10%% (paper: 23.2%% for ac05)", 100*maxGain)
	}
}

// TestRestructuredLoopsGainEvasion: ac01/ac05 keep full write-allocates
// in the original build but evade after restructuring.
func TestRestructuredLoopsGainEvasion(t *testing.T) {
	base := TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 36, MaxRows: 32,
		AlignArrays: true, HotspotOnly: true,
	}
	orig, err := RunTraffic(base)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.OptimizeLoops = true
	rest, err := RunTraffic(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ac01", "ac05"} {
		o := orig.Loop(n).BytesPerIt(orig.InnerCells)
		r := rest.Loop(n).BytesPerIt(rest.InnerCells)
		if r >= o-4 { // two evadable writes x 8B x high efficiency
			t.Errorf("%s: restructuring gained only %.2f byte/it (%.2f -> %.2f)",
				n, o-r, o, r)
		}
	}
}

// TestAuxLoopsPresent: the full traffic study includes the non-hotspot
// kernels needed for Listing 2 and Fig. 2.
func TestAuxLoopsPresent(t *testing.T) {
	res, err := RunTraffic(TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 4, MaxRows: 16, AlignArrays: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ideal_gas", "viscosity", "calc_dt", "accelerate",
		"flux_calc_x", "flux_calc_y", "reset_field_cell", "reset_field_node"} {
		if res.Loop(n) == nil {
			t.Errorf("aux loop %s missing", n)
		}
	}
	if res.FlopsPerStep() <= 0 {
		t.Error("flop accounting missing")
	}
}

// TestTrafficOptionValidation: bad inputs are rejected.
func TestTrafficOptionValidation(t *testing.T) {
	if _, err := RunTraffic(TrafficOptions{Ranks: 1}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := RunTraffic(TrafficOptions{Machine: machine.ICX8360Y(), Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := RunTraffic(TrafficOptions{Machine: machine.ICX8360Y(), Ranks: 1000}); err == nil {
		t.Error("oversubscription accepted")
	}
}

// TestUnalignedArraysRaiseTraffic: ALIGN_ARRAYS=OFF adds partial-line
// write-allocates at row boundaries.
func TestUnalignedArraysRaiseTraffic(t *testing.T) {
	aligned, err := RunTraffic(TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 36, MaxRows: 32,
		AlignArrays: true, HotspotOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	unaligned, err := RunTraffic(TrafficOptions{
		Machine: machine.ICX8360Y(), Ranks: 36, MaxRows: 32,
		AlignArrays: false, HotspotOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if unaligned.BytesPerStep() < aligned.BytesPerStep() {
		t.Errorf("unaligned arrays should not lower traffic: %.3g vs %.3g",
			unaligned.BytesPerStep(), aligned.BytesPerStep())
	}
}
