package cloversim

import (
	"math"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MachineName != "icx" || o.MaxRows != 32 || o.Steps != 5 || o.Seed == 0 {
		t.Fatalf("defaults: %+v", o)
	}
	if _, err := (Options{MachineName: "nope"}).machine(); err == nil {
		t.Error("unknown machine accepted")
	}
	if len(Machines()) < 5 {
		t.Error("machine presets missing")
	}
}

func TestRankList(t *testing.T) {
	o := Options{Ranks: []int{0, 1, 5, 99}}
	got := o.rankList(72)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("rankList filtered to %v", got)
	}
	if got := (Options{}).rankList(3); len(got) != 3 || got[2] != 3 {
		t.Fatalf("default rank list %v", got)
	}
}

func TestListing2ProfileShape(t *testing.T) {
	p, table, err := Listing2Profile(Options{MaxRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	top := p.Top(3)
	if top[0].Name != "advec_mom_kernel" || top[1].Name != "advec_cell_kernel" || top[2].Name != "pdv_kernel" {
		t.Fatalf("hotspot order: %v %v %v", top[0].Name, top[1].Name, top[2].Name)
	}
	share := p.Share("advec_mom_kernel", "advec_cell_kernel", "pdv_kernel")
	if share < 60 || share > 80 {
		t.Errorf("hotspot share %.1f%%, paper says ~69%%", share)
	}
	if len(table.Rows) == 0 {
		t.Error("empty profile table")
	}
}

func TestTableIReproduction(t *testing.T) {
	rows, table, err := TableI(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 || len(table.Rows) != 22 {
		t.Fatalf("%d rows", len(rows))
	}
	var worst float64
	for _, r := range rows {
		e := math.Abs(r.Simulated-r.MeasuredSingleCore) / r.MeasuredSingleCore
		if e > worst {
			worst = e
		}
	}
	if worst > 0.03 {
		t.Errorf("worst single-core error %.1f%%, want <= 3%%", 100*worst)
	}
}

func TestFigure2SubsetShape(t *testing.T) {
	pts, table, err := Figure2Scaling(Options{Ranks: []int{1, 18, 36, 71, 72}, MaxRows: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || len(table.Rows) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	by := map[int]float64{}
	for _, p := range pts {
		by[p.Ranks] = p.Speedup
	}
	if by[1] != 1 {
		t.Errorf("serial speedup %g", by[1])
	}
	if by[71] >= by[72] {
		t.Errorf("prime drop missing: speedup(71)=%.2f >= speedup(72)=%.2f", by[71], by[72])
	}
	if by[72] < 25 {
		t.Errorf("full-node speedup %.1f unreasonably low", by[72])
	}
}

func TestFigure3ClassBehaviour(t *testing.T) {
	pts, _, err := Figure3CodeBalance(Options{Ranks: []int{1, 36, 71, 72}, MaxRows: 24})
	if err != nil {
		t.Fatal(err)
	}
	get := func(ranks int, loop string) float64 {
		for _, p := range pts {
			if p.Ranks == ranks {
				return p.Balance[loop]
			}
		}
		t.Fatalf("ranks %d missing", ranks)
		return 0
	}
	// Class (i): strong reduction within the domain, strong prime effect.
	if !(get(36, "am04") < get(1, "am04")*0.8) {
		t.Error("am04 balance should drop strongly with ranks")
	}
	if !(get(71, "am04") > get(72, "am04")*1.04) {
		t.Error("am04 should show the prime effect")
	}
	// Class (iii): flat.
	for _, l := range []string{"am07", "ac03"} {
		if math.Abs(get(72, l)-get(1, l))/get(1, l) > 0.03 {
			t.Errorf("class-(iii) loop %s not flat: %g vs %g", l, get(1, l), get(72, l))
		}
	}
}

func TestFigure4Shares(t *testing.T) {
	shares, _, err := Figure4MPIShare(Options{MaxRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 8 {
		t.Fatalf("%d rank points, want the paper's 8", len(shares))
	}
	by := map[int]MPIShare{}
	for _, s := range shares {
		by[s.Ranks] = s
		if s.Serial < 90 || s.Serial > 100 {
			t.Errorf("ranks=%d serial share %.1f%% outside Fig. 4 band", s.Ranks, s.Serial)
		}
	}
	// The paper: 19, 37, 38, 71 show at least twice the MPI share of
	// their neighbors 18/36/72 (1D or thin decompositions).
	mpi := func(s MPIShare) float64 { return 100 - s.Serial }
	if mpi(by[19]) < 1.7*mpi(by[18]) {
		t.Errorf("19-rank MPI share %.2f%% not >> 18-rank %.2f%%", mpi(by[19]), mpi(by[18]))
	}
	if mpi(by[71]) < 1.7*mpi(by[72]) {
		t.Errorf("71-rank MPI share %.2f%% not >> 72-rank %.2f%%", mpi(by[71]), mpi(by[72]))
	}
}

func TestFigureStoreRatioICXAnchors(t *testing.T) {
	pts, _, err := FigureStoreRatio(Options{Ranks: []int{1, 36, 72}})
	if err != nil {
		t.Fatal(err)
	}
	by := map[int]StorePoint{}
	for _, p := range pts {
		by[p.Cores] = p
	}
	if math.Abs(by[1].Normal[0]-2.0) > 0.01 || math.Abs(by[1].NT[0]-1.0) > 0.01 {
		t.Errorf("serial anchors: %v %v", by[1].Normal[0], by[1].NT[0])
	}
	if by[36].Normal[0] > 1.1 {
		t.Errorf("socket ratio %.3f, want ~1.06", by[36].Normal[0])
	}
	if by[72].Normal[0] < 1.15 || by[72].Normal[0] > 1.3 {
		t.Errorf("node ratio %.3f, want 1.2-1.25", by[72].Normal[0])
	}
	if by[72].NT[0] < 1.1 || by[72].NT[0] > 1.25 {
		t.Errorf("node NT ratio %.3f, want ~1.16", by[72].NT[0])
	}
}

func TestFigure6Crossover(t *testing.T) {
	pts, _, err := Figure6CopyVolumes(Options{Ranks: []int{1, 9, 17}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].ReadPerIt-16) > 0.2 {
		t.Errorf("1-thread read %.2f, want 16", pts[0].ReadPerIt)
	}
	if pts[2].ReadPerIt > 8.5 || pts[2].SpecI2MPerIt < 7 {
		t.Errorf("17-thread: read %.2f i2m %.2f, want ~8/~8", pts[2].ReadPerIt, pts[2].SpecI2MPerIt)
	}
	for _, p := range pts {
		if math.Abs(p.WritePerIt-8) > 0.2 {
			t.Errorf("write volume %.2f at %d threads, want 8", p.WritePerIt, p.Threads)
		}
	}
}

func TestFigure7ModelError(t *testing.T) {
	rows, _, err := Figure7RefinedModel(Options{MaxRows: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("%d rows", len(rows))
	}
	var sumErr float64
	improved := 0
	for _, r := range rows {
		sumErr += math.Abs(r.Original-r.Prediction) / r.Prediction
		if r.Optimized < r.Original*0.999 {
			improved++
		}
		if r.PredictionMin > r.Prediction+1e-9 {
			t.Errorf("%s: min %g above refined %g", r.Loop, r.PredictionMin, r.Prediction)
		}
	}
	if avg := sumErr / 22; avg > 0.07 {
		t.Errorf("refined-model average error %.1f%%, paper achieves ~7%%", 100*avg)
	}
	if improved < 8 {
		t.Errorf("only %d loops improved by the optimized build", improved)
	}
}

func TestFigureHaloCopyOrdering(t *testing.T) {
	pts, _, err := FigureHaloCopy(Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	a216 := AverageRatio(pts, 216, false)
	a530 := AverageRatio(pts, 530, false)
	a1920 := AverageRatio(pts, 1920, false)
	if !(a216 > a530 && a530 > a1920 && a1920 < 1.10) {
		t.Errorf("halo ordering: 216=%.3f 530=%.3f 1920=%.3f", a216, a530, a1920)
	}
	if AverageRatio(pts, 999, false) != 0 {
		t.Error("missing dimension should average to 0")
	}
}

func TestSPRMachinesRun(t *testing.T) {
	pts, _, err := FigureStoreRatio(Options{MachineName: "spr8480", Ranks: []int{1, 56, 112}})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Normal[0] > 1.6 || pts[1].Normal[0] < 1.4 {
		t.Errorf("SPR socket ratio %.3f, want ~1.5", pts[1].Normal[0])
	}
	// SNC-on 8470 runs too (Fig. 9).
	if _, _, err := FigureStoreRatio(Options{MachineName: "spr8470+s", Ranks: []int{1, 13, 26}}); err != nil {
		t.Fatal(err)
	}
}
