package cloversim

import (
	"fmt"
	"sort"

	"cloversim/internal/bench"
	"cloversim/internal/cloverleaf"
	"cloversim/internal/csvout"
	"cloversim/internal/decomp"
	"cloversim/internal/model"
	"cloversim/internal/profiler"
	"cloversim/internal/sweep"
)

// experimentWorkers bounds the per-experiment scenario parallelism
// (each scenario is itself a multi-goroutine traffic simulation).
const experimentWorkers = 8

// trafficOpts builds the common traffic-study options.
func (o Options) trafficOpts(ranks int) (cloverleaf.TrafficOptions, error) {
	spec, err := o.machine()
	if err != nil {
		return cloverleaf.TrafficOptions{}, err
	}
	return cloverleaf.TrafficOptions{
		Machine:     spec,
		Ranks:       ranks,
		MaxRows:     o.MaxRows,
		AlignArrays: true,
		Seed:        o.Seed,
	}, nil
}

// ---------------------------------------------------------------------
// E1 — Listing 2: gprofng runtime profile of a 72-rank run.
// ---------------------------------------------------------------------

// Listing2Profile models the per-function CPU-time profile.
func Listing2Profile(o Options) (*profiler.Profile, *csvout.Table, error) {
	o = o.withDefaults()
	to, err := o.trafficOpts(0)
	if err != nil {
		return nil, nil, err
	}
	spec := to.Machine
	to.Ranks = spec.Cores()
	m, err := cloverleaf.ModelNode(to)
	if err != nil {
		return nil, nil, err
	}
	// Scale per-step aggregate CPU seconds to the Tiny run (400 steps).
	kernels := map[string]float64{}
	for k, v := range m.KernelSeconds {
		kernels[k] = v * 400
	}
	p := profiler.FromKernelSeconds(kernels)
	t := csvout.New("name", "excl_sec", "cpu_pct")
	t.Add("<Total>", p.Total, 100.0)
	for _, e := range p.Top(10) {
		t.Add(e.Name, e.Seconds, e.Percent)
	}
	return p, t, nil
}

// ---------------------------------------------------------------------
// E2 — Table I: analytic loop models and measured single-core balance.
// ---------------------------------------------------------------------

// TableIRow is one output row of the Table I reproduction.
type TableIRow struct {
	model.Table1Row
	Simulated float64 // simulated single-core byte/it
}

// TableI reproduces Table I: the four analytic byte/it columns plus the
// simulated single-core code balance next to the paper's measurement.
func TableI(o Options) ([]TableIRow, *csvout.Table, error) {
	o = o.withDefaults()
	to, err := o.trafficOpts(1)
	if err != nil {
		return nil, nil, err
	}
	to.HotspotOnly = true
	res, err := cloverleaf.RunTraffic(to)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]TableIRow, 0, len(model.Table1))
	t := csvout.New("loop", "arrays", "rd_lcf", "rd_lcb", "wr", "rd_wr", "flops",
		"bpi_min", "bpi_lcf_wa", "bpi_lcb", "bpi_max", "bpi_paper_meas", "bpi_simulated")
	for _, r := range model.Table1 {
		lt := res.Loop(r.Name)
		if lt == nil {
			return nil, nil, fmt.Errorf("cloversim: loop %s missing from traffic study", r.Name)
		}
		row := TableIRow{Table1Row: r, Simulated: lt.BytesPerIt(res.InnerCells)}
		rows = append(rows, row)
		t.Add(r.Name, r.Arrays, r.RDLCF, r.RDLCB, r.WR, r.RDWR, r.FlopsIt,
			r.BytesMin(), r.BytesLCFWA(), r.BytesLCB(), r.BytesMax(),
			r.MeasuredSingleCore, row.Simulated)
	}
	return rows, t, nil
}

// ---------------------------------------------------------------------
// E3 — Figure 2: speedup and memory bandwidth vs rank count.
// ---------------------------------------------------------------------

// Figure2Scaling models the scaling curve with compact pinning.
func Figure2Scaling(o Options) ([]cloverleaf.ScalingPoint, *csvout.Table, error) {
	o = o.withDefaults()
	to, err := o.trafficOpts(1)
	if err != nil {
		return nil, nil, err
	}
	spec := to.Machine
	ranks := o.rankList(spec.Cores())

	// Compute points in parallel (each is an independent model run).
	pts := make([]cloverleaf.ScalingPoint, len(ranks))
	err = sweep.ForEach(experimentWorkers, len(ranks), func(i int) error {
		n := ranks[i]
		oo := to
		oo.Ranks = n
		m, err := cloverleaf.ModelNode(oo)
		if err != nil {
			return err
		}
		pts[i] = cloverleaf.ScalingPoint{
			Ranks:          n,
			StepSeconds:    m.StepSeconds,
			MPISeconds:     m.MPIPerStep.Total(),
			BandwidthGBs:   m.BandwidthBytes / 1e9,
			Prime:          decomp.IsPrime(n),
			InnerDimension: decomp.InnerDim(n, 15360, 15360),
		}
		pts[i].Speedup = m.TotalStepSeconds // patched below with serial baseline
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Serial baseline: the run with ranks==1 must be part of the list.
	serial := -1.0
	for i := range pts {
		if pts[i].Ranks == 1 {
			serial = pts[i].Speedup
		}
	}
	if serial < 0 {
		oo := to
		oo.Ranks = 1
		m, err := cloverleaf.ModelNode(oo)
		if err != nil {
			return nil, nil, err
		}
		serial = m.TotalStepSeconds
	}
	t := csvout.New("ranks", "speedup", "bandwidth_gbs", "step_sec", "mpi_sec", "prime", "inner_dim")
	for i := range pts {
		pts[i].Speedup = serial / pts[i].Speedup
		p := pts[i]
		t.Add(p.Ranks, p.Speedup, p.BandwidthGBs, p.StepSeconds, p.MPISeconds, p.Prime, p.InnerDimension)
	}
	return pts, t, nil
}

// ---------------------------------------------------------------------
// E4 — Figure 3: per-loop code balance vs rank count.
// ---------------------------------------------------------------------

// BalancePoint holds one rank count's per-loop code balances.
type BalancePoint struct {
	Ranks   int
	Balance map[string]float64 // loop -> byte/it
}

// Figure3CodeBalance sweeps rank counts and reports per-loop byte/it.
func Figure3CodeBalance(o Options) ([]BalancePoint, *csvout.Table, error) {
	o = o.withDefaults()
	to, err := o.trafficOpts(1)
	if err != nil {
		return nil, nil, err
	}
	to.HotspotOnly = true
	spec := to.Machine
	ranks := o.rankList(spec.Cores())

	pts := make([]BalancePoint, len(ranks))
	err = sweep.ForEach(experimentWorkers, len(ranks), func(i int) error {
		oo := to
		oo.Ranks = ranks[i]
		res, err := cloverleaf.RunTraffic(oo)
		if err != nil {
			return err
		}
		bp := BalancePoint{Ranks: ranks[i], Balance: map[string]float64{}}
		for name, lt := range res.Loops {
			bp.Balance[name] = lt.BytesPerIt(res.InnerCells)
		}
		pts[i] = bp
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	names := model.HotspotLoopNames()
	header := append([]string{"ranks"}, names...)
	t := csvout.New(header...)
	for _, p := range pts {
		row := make([]interface{}, 0, len(names)+1)
		row = append(row, p.Ranks)
		for _, n := range names {
			row = append(row, p.Balance[n])
		}
		t.Add(row...)
	}
	return pts, t, nil
}

// ---------------------------------------------------------------------
// E5 — Figure 4: relative MPI time distribution.
// ---------------------------------------------------------------------

// MPIShare is one rank count's runtime distribution in percent.
type MPIShare struct {
	Ranks                                      int
	Serial, Waitall, Allreduce, Isend, ReduceP float64
}

// Figure4MPIShare models the serial/MPI runtime split for the paper's
// rank selection {2,17,18,19,37,38,71,72}.
func Figure4MPIShare(o Options) ([]MPIShare, *csvout.Table, error) {
	o = o.withDefaults()
	to, err := o.trafficOpts(1)
	if err != nil {
		return nil, nil, err
	}
	ranks := o.Ranks
	if len(ranks) == 0 {
		ranks = []int{2, 17, 18, 19, 37, 38, 71, 72}
	}
	t := csvout.New("ranks", "serial_pct", "waitall_pct", "allreduce_pct", "isend_pct", "reduce_pct")
	out := make([]MPIShare, 0, len(ranks))
	for _, n := range ranks {
		oo := to
		oo.Ranks = n
		m, err := cloverleaf.ModelNode(oo)
		if err != nil {
			return nil, nil, err
		}
		total := m.TotalStepSeconds
		s := MPIShare{
			Ranks:     n,
			Serial:    100 * m.StepSeconds / total,
			Waitall:   100 * m.MPIPerStep.Waitall / total,
			Allreduce: 100 * m.MPIPerStep.Allreduce / total,
			Isend:     100 * m.MPIPerStep.Isend / total,
			ReduceP:   100 * m.MPIPerStep.Reduce / total,
		}
		out = append(out, s)
		t.Add(n, s.Serial, s.Waitall, s.Allreduce, s.Isend, s.ReduceP)
	}
	return out, t, nil
}

// ---------------------------------------------------------------------
// E6/E10/E11 — Figures 5, 9, 10: store ratio microbenchmarks.
// ---------------------------------------------------------------------

// StorePoint is one core count's ratios for the six series.
type StorePoint struct {
	Cores  int
	Normal [3]float64 // ST-1..ST-3
	NT     [3]float64 // ST-NT-1..ST-NT-3
}

// FigureStoreRatio sweeps core counts for 1-3 store streams, with and
// without NT stores, on the configured machine.
func FigureStoreRatio(o Options) ([]StorePoint, *csvout.Table, error) {
	o = o.withDefaults()
	spec, err := o.machine()
	if err != nil {
		return nil, nil, err
	}
	cores := o.rankList(spec.Cores())
	pts := make([]StorePoint, len(cores))
	err = sweep.ForEach(experimentWorkers, len(cores), func(i int) error {
		n := cores[i]
		p := StorePoint{Cores: n}
		for s := 1; s <= 3; s++ {
			r, err := bench.RunStore(bench.StoreOptions{
				Machine: spec, Streams: s, Cores: n, BytesPerStream: 2 << 20, Seed: o.Seed})
			if err != nil {
				return err
			}
			p.Normal[s-1] = r.Ratio()
			rn, err := bench.RunStore(bench.StoreOptions{
				Machine: spec, Streams: s, NT: true, Cores: n, BytesPerStream: 2 << 20, Seed: o.Seed})
			if err != nil {
				return err
			}
			p.NT[s-1] = rn.Ratio()
		}
		pts[i] = p
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := csvout.New("cores", "st1", "st2", "st3", "st_nt1", "st_nt2", "st_nt3")
	for _, p := range pts {
		t.Add(p.Cores, p.Normal[0], p.Normal[1], p.Normal[2], p.NT[0], p.NT[1], p.NT[2])
	}
	return pts, t, nil
}

// ---------------------------------------------------------------------
// E7 — Figure 6: copy-kernel data volumes vs thread count.
// ---------------------------------------------------------------------

// CopyVolumePoint is one thread count's per-iteration volumes.
type CopyVolumePoint struct {
	Threads               int
	ReadPerIt, WritePerIt float64
	SpecI2MPerIt          float64
}

// Figure6CopyVolumes sweeps thread counts of the copy kernel on one
// socket (the paper plots 1..36).
func Figure6CopyVolumes(o Options) ([]CopyVolumePoint, *csvout.Table, error) {
	o = o.withDefaults()
	spec, err := o.machine()
	if err != nil {
		return nil, nil, err
	}
	threads := o.Ranks
	if len(threads) == 0 {
		threads = o.rankList(spec.CoresPerSocket)
	}
	t := csvout.New("threads", "read_bpi", "write_bpi", "speci2m_bpi")
	out := make([]CopyVolumePoint, 0, len(threads))
	for _, n := range threads {
		r, err := bench.RunCopy(bench.CopyOptions{Machine: spec, Cores: n, Elems: 1 << 19, Seed: o.Seed})
		if err != nil {
			return nil, nil, err
		}
		p := CopyVolumePoint{Threads: n, ReadPerIt: r.ReadPerIt(), WritePerIt: r.WritePerIt(), SpecI2MPerIt: r.ItoMPerIt()}
		out = append(out, p)
		t.Add(n, p.ReadPerIt, p.WritePerIt, p.SpecI2MPerIt)
	}
	return out, t, nil
}

// ---------------------------------------------------------------------
// E8 — Figure 7: refined model vs full-node measurement.
// ---------------------------------------------------------------------

// Figure7Row is one loop's Fig. 7 comparison.
type Figure7Row struct {
	Loop          string
	PredictionMin float64 // minimum code balance (no WA)
	Prediction    float64 // refined model with SpecI2M store factor
	Original      float64 // simulated original code, 72 ranks
	Optimized     float64 // simulated NT + restructured loops, 72 ranks
}

// Figure7RefinedModel compares the phenomenological model against the
// simulated full-node measurement, original and optimized builds.
func Figure7RefinedModel(o Options) ([]Figure7Row, *csvout.Table, error) {
	o = o.withDefaults()
	to, err := o.trafficOpts(0)
	if err != nil {
		return nil, nil, err
	}
	spec := to.Machine
	to.Ranks = spec.Cores()
	to.HotspotOnly = true

	orig, err := cloverleaf.RunTraffic(to)
	if err != nil {
		return nil, nil, err
	}
	toOpt := to
	toOpt.NTStores = true
	toOpt.OptimizeLoops = true
	opt, err := cloverleaf.RunTraffic(toOpt)
	if err != nil {
		return nil, nil, err
	}

	const storeFactor = 1.2 // the paper's phenomenological ICX factor
	ntRevert := spec.NTRevert(1.0)

	rows := make([]Figure7Row, 0, len(model.Table1))
	t := csvout.New("loop", "prediction_min", "prediction", "original_meas", "optimized_meas")
	ineligible := map[string]bool{"ac01": true, "ac02": true, "ac05": true, "ac06": true}
	for _, r := range model.Table1 {
		lo, lp := orig.Loop(r.Name), opt.Loop(r.Name)
		row := Figure7Row{
			Loop:          r.Name,
			PredictionMin: float64(r.BytesMin()),
			Prediction:    r.RefinedPrediction(storeFactor, !ineligible[r.Name]),
			Original:      lo.BytesPerIt(orig.InnerCells),
			Optimized:     lp.BytesPerIt(opt.InnerCells),
		}
		_ = ntRevert
		rows = append(rows, row)
		t.Add(row.Loop, row.PredictionMin, row.Prediction, row.Original, row.Optimized)
	}
	return rows, t, nil
}

// ---------------------------------------------------------------------
// E9/E12 — Figures 8, 11: halo-copy read/write ratio.
// ---------------------------------------------------------------------

// HaloPoint is one (dimension, halo) measurement.
type HaloPoint struct {
	Inner, Halo int
	PFOff       bool
	RWRatio     float64
}

// FigureHaloCopy sweeps halo sizes 0..17 for inner dimensions 216, 530,
// 1920 on the full node; withPFOff additionally repeats the sweep with
// prefetchers disabled (Fig. 8's "PF off" series).
func FigureHaloCopy(o Options, withPFOff bool) ([]HaloPoint, *csvout.Table, error) {
	o = o.withDefaults()
	spec, err := o.machine()
	if err != nil {
		return nil, nil, err
	}
	dims := []int{216, 530, 1920}
	pf := []bool{false}
	if withPFOff {
		pf = []bool{false, true}
	}
	type job struct {
		dim, halo int
		pfoff     bool
	}
	var jobs []job
	for _, pfoff := range pf {
		for _, d := range dims {
			for h := 0; h <= 17; h++ {
				jobs = append(jobs, job{d, h, pfoff})
			}
		}
	}
	pts := make([]HaloPoint, len(jobs))
	if err := sweep.ForEach(experimentWorkers, len(jobs), func(i int) error {
		j := jobs[i]
		r, err := bench.RunCopy(bench.CopyOptions{
			Machine: spec, Cores: spec.Cores(), Elems: 1 << 18,
			Inner: j.dim, Halo: j.halo, PFOff: j.pfoff, Seed: o.Seed})
		if err != nil {
			return err
		}
		pts[i] = HaloPoint{Inner: j.dim, Halo: j.halo, PFOff: j.pfoff, RWRatio: r.RWRatio()}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	sort.SliceStable(pts, func(a, b int) bool {
		if pts[a].PFOff != pts[b].PFOff {
			return !pts[a].PFOff
		}
		if pts[a].Inner != pts[b].Inner {
			return pts[a].Inner < pts[b].Inner
		}
		return pts[a].Halo < pts[b].Halo
	})
	t := csvout.New("inner", "halo", "pf_off", "rw_ratio")
	for _, p := range pts {
		t.Add(p.Inner, p.Halo, p.PFOff, p.RWRatio)
	}
	return pts, t, nil
}

// AverageRatio returns the mean RW ratio of the points matching inner
// and prefetch state (used by tests and EXPERIMENTS.md).
func AverageRatio(pts []HaloPoint, inner int, pfOff bool) float64 {
	var s float64
	n := 0
	for _, p := range pts {
		if p.Inner == inner && p.PFOff == pfOff {
			s += p.RWRatio
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
