// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design
// choices called out in DESIGN.md and throughput benches for the
// substrates. Domain metrics are attached via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the headline number of every artifact next to its cost.
package cloversim

import (
	"math"
	"testing"

	"cloversim/internal/bench"
	"cloversim/internal/cloverleaf"
	"cloversim/internal/core"
	"cloversim/internal/decomp"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
	"cloversim/internal/model"
	"cloversim/internal/mpi"
	"cloversim/internal/trace"
)

// quickOpts keeps benchmark configs tractable.
func quickOpts() Options { return Options{MaxRows: 24} }

// --- E1: Listing 2 -----------------------------------------------------

func BenchmarkListing2Profile(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		p, _, err := Listing2Profile(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		share = p.Share("advec_mom_kernel", "advec_cell_kernel", "pdv_kernel")
	}
	b.ReportMetric(share, "hotspot_%") // paper: ~69
}

// --- E2: Table I -------------------------------------------------------

func BenchmarkTableISingleCore(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, _, err := TableI(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			e := math.Abs(r.Simulated-r.MeasuredSingleCore) / r.MeasuredSingleCore
			worst = math.Max(worst, e)
		}
	}
	b.ReportMetric(worst*100, "worst_err_%") // paper column reproduced within a few %
}

// --- E3: Figure 2 ------------------------------------------------------

func BenchmarkFigure2Scaling(b *testing.B) {
	o := quickOpts()
	o.Ranks = []int{1, 9, 18, 19, 36, 37, 64, 71, 72}
	var drop float64
	for i := 0; i < b.N; i++ {
		pts, _, err := Figure2Scaling(o)
		if err != nil {
			b.Fatal(err)
		}
		var s71, s72 float64
		for _, p := range pts {
			if p.Ranks == 71 {
				s71 = p.Speedup
			}
			if p.Ranks == 72 {
				s72 = p.Speedup
			}
		}
		drop = 100 * (1 - s71/s72)
	}
	b.ReportMetric(drop, "prime_drop_%")
}

// --- E4: Figure 3 ------------------------------------------------------

func BenchmarkFigure3CodeBalance(b *testing.B) {
	o := quickOpts()
	o.Ranks = []int{1, 36, 71, 72}
	var spike float64
	for i := 0; i < b.N; i++ {
		pts, _, err := Figure3CodeBalance(o)
		if err != nil {
			b.Fatal(err)
		}
		var b71, b72 float64
		for _, p := range pts {
			if p.Ranks == 71 {
				b71 = p.Balance["am04"]
			}
			if p.Ranks == 72 {
				b72 = p.Balance["am04"]
			}
		}
		spike = 100 * (b71/b72 - 1)
	}
	b.ReportMetric(spike, "am04_prime_spike_%")
}

// --- E5: Figure 4 ------------------------------------------------------

func BenchmarkFigure4MPIShare(b *testing.B) {
	var serial71 float64
	for i := 0; i < b.N; i++ {
		shares, _, err := Figure4MPIShare(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range shares {
			if s.Ranks == 71 {
				serial71 = s.Serial
			}
		}
	}
	b.ReportMetric(serial71, "serial71_%") // paper band: 94-99
}

// --- E6/E10/E11: Figures 5, 9, 10 --------------------------------------

func benchStoreRatio(b *testing.B, machineName string, socket, node int) {
	o := quickOpts()
	o.MachineName = machineName
	o.Ranks = []int{1, socket, node}
	var nodeRatio float64
	for i := 0; i < b.N; i++ {
		pts, _, err := FigureStoreRatio(o)
		if err != nil {
			b.Fatal(err)
		}
		nodeRatio = pts[len(pts)-1].Normal[0]
	}
	b.ReportMetric(nodeRatio, "node_st1_ratio")
}

func BenchmarkFigure5StoreRatioICX(b *testing.B)      { benchStoreRatio(b, "icx", 36, 72) }
func BenchmarkFigure9StoreRatioSPR8470(b *testing.B)  { benchStoreRatio(b, "spr8470+s", 52, 104) }
func BenchmarkFigure10StoreRatioSPR8480(b *testing.B) { benchStoreRatio(b, "spr8480", 56, 112) }

// --- E7: Figure 6 ------------------------------------------------------

func BenchmarkFigure6CopyVolumes(b *testing.B) {
	o := quickOpts()
	o.Ranks = []int{1, 9, 17}
	var read17 float64
	for i := 0; i < b.N; i++ {
		pts, _, err := Figure6CopyVolumes(o)
		if err != nil {
			b.Fatal(err)
		}
		read17 = pts[len(pts)-1].ReadPerIt
	}
	b.ReportMetric(read17, "read_bpi_17thr") // paper: ~8 (WAs evaded)
}

// --- E8: Figure 7 ------------------------------------------------------

func BenchmarkFigure7RefinedModel(b *testing.B) {
	var avgErr float64
	for i := 0; i < b.N; i++ {
		rows, _, err := Figure7RefinedModel(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, r := range rows {
			s += math.Abs(r.Original-r.Prediction) / r.Prediction
		}
		avgErr = 100 * s / float64(len(rows))
	}
	b.ReportMetric(avgErr, "model_err_%") // paper: ~7
}

// --- E9/E12: Figures 8, 11 ---------------------------------------------

func benchHalo(b *testing.B, machineName string) {
	o := quickOpts()
	o.MachineName = machineName
	var a216 float64
	for i := 0; i < b.N; i++ {
		pts, _, err := FigureHaloCopy(o, false)
		if err != nil {
			b.Fatal(err)
		}
		a216 = AverageRatio(pts, 216, false)
	}
	b.ReportMetric(a216, "avg216_ratio")
}

func BenchmarkFigure8HaloICX(b *testing.B)  { benchHalo(b, "icx") }
func BenchmarkFigure11HaloSPR(b *testing.B) { benchHalo(b, "spr8480") }

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationRunDetectorK varies the run-detector warm-up length:
// longer warm-ups hurt short inner dimensions (the prime effect knob).
func BenchmarkAblationRunDetectorK(b *testing.B) {
	// A misaligned halo resets the detector every row, so the warm-up
	// length K directly scales the unclaimed fraction of each 27-line row.
	for _, k := range []int{1, 5, 12} {
		b.Run(map[int]string{1: "K1", 5: "K5", 12: "K12"}[k], func(b *testing.B) {
			spec := *machine.ICX8360Y()
			spec.I2M.MinRunLines = k
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunCopy(bench.CopyOptions{
					Machine: &spec, Cores: 72, Elems: 1 << 17, Inner: 216, Halo: 3})
				if err != nil {
					b.Fatal(err)
				}
				ratio = r.RWRatio()
			}
			b.ReportMetric(ratio, "rw216_ratio")
		})
	}
}

// BenchmarkAblationEvasionCurve compares CloverLeaf full-node traffic
// with SpecI2M on vs off (the paper's MSR experiment).
func BenchmarkAblationEvasionCurve(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "SpecI2M_on"
		if off {
			name = "SpecI2M_off"
		}
		b.Run(name, func(b *testing.B) {
			var vol float64
			for i := 0; i < b.N; i++ {
				res, err := cloverleaf.RunTraffic(cloverleaf.TrafficOptions{
					Machine: machine.ICX8360Y(), Ranks: 72, MaxRows: 24,
					AlignArrays: true, HotspotOnly: true, SpecI2MOff: off,
				})
				if err != nil {
					b.Fatal(err)
				}
				vol = res.BytesPerStep() / 1e9
			}
			b.ReportMetric(vol, "GB/step")
		})
	}
}

// BenchmarkAblationEligibility quantifies the ac01/ac05 restructuring.
func BenchmarkAblationEligibility(b *testing.B) {
	for _, opt := range []bool{false, true} {
		name := "original"
		if opt {
			name = "restructured"
		}
		b.Run(name, func(b *testing.B) {
			var bpi float64
			for i := 0; i < b.N; i++ {
				res, err := cloverleaf.RunTraffic(cloverleaf.TrafficOptions{
					Machine: machine.ICX8360Y(), Ranks: 36, MaxRows: 24,
					AlignArrays: true, HotspotOnly: true, OptimizeLoops: opt,
				})
				if err != nil {
					b.Fatal(err)
				}
				bpi = res.Loop("ac01").BytesPerIt(res.InnerCells)
			}
			b.ReportMetric(bpi, "ac01_bpi")
		})
	}
}

// BenchmarkAblationSNC compares ICX with SNC on vs off.
func BenchmarkAblationSNC(b *testing.B) {
	for _, name := range []string{"icx", "icx-snc0"} {
		b.Run(name, func(b *testing.B) {
			spec, _ := machine.ByName(name)
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunStore(bench.StoreOptions{
					Machine: spec, Streams: 1, Cores: 18, BytesPerStream: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				ratio = r.Ratio()
			}
			b.ReportMetric(ratio, "st1_ratio_18c")
		})
	}
}

// --- Substrate throughput ------------------------------------------------

func BenchmarkHierarchyStreamingLoad(b *testing.B) {
	h := memsim.New(machine.ICX8360Y())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(int64(i))
	}
	b.ReportMetric(float64(h.Counts().MemReadLines)/float64(b.N), "missrate")
}

func BenchmarkStoreEngineFullLines(b *testing.B) {
	h := memsim.New(machine.ICX8360Y())
	e := core.NewStoreEngine(h, machine.ICX8360Y())
	e.ConfigureStreams(1, nil)
	e.SetContext(core.Context{Pressure: 1, ActiveSockets: 1,
		Class: machine.ClassCopy, StoreStreams: 1, Eligible: true, PFOn: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.StoreRange(0, int64(i)*64, 64)
	}
}

func BenchmarkTraceReplayAm04(b *testing.B) {
	tc := cloverleaf.NewTrafficChunk(1, 1920, 1, 64, 0, true)
	loops := tc.HotspotLoops(false)
	var am04 cloverleaf.LoopInstance
	for _, l := range loops {
		if l.Loop.Name == "am04" {
			am04 = l
		}
	}
	x := trace.NewExecutor(machine.ICX8360Y())
	x.SetEnv(trace.Env{Pressure: 1, NodeFraction: 1, ActiveSockets: 2, PFOn: true})
	b.ResetTimer()
	var c memsim.Counts
	for i := 0; i < b.N; i++ {
		c = x.Run(am04.Loop, am04.Bounds)
	}
	b.ReportMetric(float64(c.TotalBytes())/float64(am04.Bounds.Iterations()), "byte/it")
}

func BenchmarkPhysicsStep(b *testing.B) {
	for _, threads := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "threads4"}[threads]
		b.Run(name, func(b *testing.B) {
			r := cloverleaf.NewSerialRank(cloverleaf.Small(256, 1000000))
			r.Chunk.SetThreads(threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Step(i + 1); err != nil {
					b.Fatal(err)
				}
			}
			cells := float64(256 * 256)
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}

// BenchmarkAblationBaselineCLX contrasts the pre-SpecI2M Cascade Lake
// baseline with ICX at matching occupancy.
func BenchmarkAblationBaselineCLX(b *testing.B) {
	for _, name := range []string{"clx", "icx"} {
		b.Run(name, func(b *testing.B) {
			spec, _ := machine.ByName(name)
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunStore(bench.StoreOptions{
					Machine: spec, Streams: 1, Cores: spec.CoresPerSocket, BytesPerStream: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				ratio = r.Ratio()
			}
			b.ReportMetric(ratio, "socket_st1_ratio")
		})
	}
}

func BenchmarkMPIAllreduce(b *testing.B) {
	w := mpi.NewWorld(8, mpi.DefaultTimeModel())
	b.ResetTimer()
	w.Run(func(c *mpi.Comm) {
		for i := 0; i < b.N; i++ {
			c.AllreduceScalar(float64(i), mpi.OpMin)
		}
	})
}

func BenchmarkHaloExchange4Ranks(b *testing.B) {
	cfg := cloverleaf.Small(128, 1)
	w := mpi.NewWorld(4, mpi.DefaultTimeModel())
	subs := decomp.Decompose(4, cfg.GridX, cfg.GridY)
	w.Run(func(c *mpi.Comm) {
		r := cloverleaf.NewMPIRank(cfg, c, subs)
		fields := []cloverleaf.HaloField{
			{F: r.Chunk.Density0, Kind: cloverleaf.KindCell},
			{F: r.Chunk.XVel0, Kind: cloverleaf.KindNodeX},
		}
		for i := 0; i < b.N; i++ {
			if err := r.Chunk.UpdateHaloMPI(c, r.Nbr, fields, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkModelAnalytic measures the pure analytic model (no sim).
func BenchmarkModelAnalytic(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		for _, r := range model.Table1 {
			s += r.RefinedPrediction(1.2, true)
		}
	}
	b.ReportMetric(s/float64(b.N)/22, "avg_pred_bpi")
}
