package cloversim

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

// quickGrid is a small but real campaign: two machines x two evasion
// modes on a reduced mesh, exercising the full traffic + time-model +
// microbenchmark workload.
func quickGrid() sweep.Grid {
	baseline, _ := sweep.ModeByName("baseline")
	nt, _ := sweep.ModeByName("nt")
	return sweep.Grid{
		Machines: []string{machine.NameICX8360Y, machine.NameCLX8280},
		Modes:    []sweep.Mode{baseline, nt},
		Ranks:    []int{4},
		Threads:  []int{4},
		Meshes:   []sweep.Mesh{{X: 1536, Y: 1536}},
		MaxRows:  8,
		Seed:     0x5eed,
	}
}

// TestCampaignDeterministicOutput: same grid + seed must produce
// byte-identical CSV and JSON regardless of worker count and across
// repeated runs (run with -cpu 1,4,8 in CI to also vary GOMAXPROCS).
func TestCampaignDeterministicOutput(t *testing.T) {
	g := quickGrid()
	var wantCSV, wantJSON []byte
	for _, workers := range []int{1, 4, 0, 1} {
		c := sweep.NewEngine(workers).Run(g, RunScenario)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		var csv, js bytes.Buffer
		if err := (sweep.CSVEmitter{}).Emit(&csv, c); err != nil {
			t.Fatal(err)
		}
		if err := (sweep.JSONEmitter{Indent: true}).Emit(&js, c); err != nil {
			t.Fatal(err)
		}
		if wantCSV == nil {
			wantCSV, wantJSON = csv.Bytes(), js.Bytes()
			continue
		}
		if !bytes.Equal(csv.Bytes(), wantCSV) {
			t.Errorf("workers=%d: CSV not byte-identical:\n%s\nvs\n%s", workers, csv.Bytes(), wantCSV)
		}
		if !bytes.Equal(js.Bytes(), wantJSON) {
			t.Errorf("workers=%d: JSON not byte-identical", workers)
		}
	}
}

// TestRunScenarioMetrics sanity-checks the standard workload's physics:
// the no-evasion baseline (CLX) keeps a serial-like store ratio of 2.0
// while ICX at 4 cores already evades some write-allocates; NT stores
// cut traffic everywhere.
func TestRunScenarioMetrics(t *testing.T) {
	get := func(s sweep.Scenario, name string) float64 {
		t.Helper()
		m, err := RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		v, found := m.Get(name)
		if !found {
			t.Fatalf("metric %s missing (have %v)", name, m)
		}
		return v
	}
	nt, _ := sweep.ModeByName("nt")
	base := sweep.Scenario{Machine: "clx", Ranks: 4, Threads: 4,
		Mesh: sweep.Mesh{X: 1536, Y: 1536}, MaxRows: 8, Mode: sweep.Mode{Name: "baseline"}}
	if r := get(base, "store_ratio"); r < 1.95 {
		t.Errorf("CLX (no SpecI2M) store ratio %.3f, want ~2.0", r)
	}
	ntScen := base
	ntScen.Mode = nt
	if r := get(ntScen, "store_ratio"); r > 1.3 {
		t.Errorf("CLX NT store ratio %.3f, want ~1.0x", r)
	}
	icx := base
	icx.Machine = "icx"
	icx.Threads = 36 // full socket: SpecI2M active
	if r := get(icx, "store_ratio"); r > 1.5 {
		t.Errorf("ICX full-socket store ratio %.3f, want evasion < 1.5", r)
	}
	if v := get(base, "bandwidth_gbs"); v <= 0 {
		t.Errorf("bandwidth %.3f must be positive", v)
	}
}

// TestRunScenarioContextRefusesDeadContext: the production runner's
// pre-run check must mark the cell as unstarted (never a genuine
// failure), matching the engine's own dispatch-time marker, so an
// interrupt landing in the dispatch-to-run window still exits 3.
func TestRunScenarioContextRefusesDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := quickGrid().Expand()[0]
	m, err := RunScenarioContext(ctx, sc)
	if m != nil || err == nil {
		t.Fatalf("RunScenarioContext on dead context = %v, %v; want nil metrics and an error", m, err)
	}
	if !errors.Is(err, sweep.ErrUnstarted) || !errors.Is(err, context.Canceled) {
		t.Errorf("error %v should wrap sweep.ErrUnstarted and context.Canceled", err)
	}
	// A live context runs the real workload.
	if m, err := RunScenarioContext(context.Background(), sc); err != nil || len(m) == 0 {
		t.Errorf("RunScenarioContext with live context = %v, %v; want real metrics", m, err)
	}
}

// TestRunScenarioErrorIsolation: a campaign containing an invalid
// machine reports that scenario's error without losing the others.
func TestRunScenarioErrorIsolation(t *testing.T) {
	g := quickGrid()
	g.Machines = append([]string{"no-such-machine"}, g.Machines...)
	c := sweep.NewEngine(4).Run(g, RunScenario)
	failed := c.Failed()
	if len(failed) != 2 { // bogus machine x 2 modes
		t.Fatalf("%d failures, want 2", len(failed))
	}
	for _, r := range failed {
		if !strings.Contains(r.Err.Error(), "no-such-machine") {
			t.Errorf("unexpected error %v", r.Err)
		}
	}
	for _, r := range c.Results {
		if r.Scenario.Machine != "no-such-machine" && r.Err != nil {
			t.Errorf("healthy scenario %s failed: %v", r.Scenario.Label(), r.Err)
		}
	}
}

// TestRunScenarioCaching: the engine must not re-execute a config hash
// it has already run.
func TestRunScenarioCaching(t *testing.T) {
	var runs atomic.Int64
	counted := func(s sweep.Scenario) (sweep.Metrics, error) {
		runs.Add(1)
		return RunScenario(s)
	}
	e := sweep.NewEngine(4)
	g := quickGrid()
	e.Run(g, counted)
	first := runs.Load()
	if first != int64(g.Size()) {
		t.Fatalf("first campaign ran %d, want %d", first, g.Size())
	}
	c := e.Run(g, counted)
	if runs.Load() != first {
		t.Errorf("repeat campaign re-executed: %d runs", runs.Load())
	}
	for _, r := range c.Results {
		if !r.Cached {
			t.Errorf("scenario %s not served from cache", r.Scenario.Label())
		}
	}
}

// TestCampaignGridCoversPaper: the default cmd/sweep campaign spans
// every machine preset and every evasion mode (>=24 scenarios, the
// whole-paper cross product).
func TestCampaignGridCoversPaper(t *testing.T) {
	g := CampaignGrid(0)
	if g.Size() < 24 {
		t.Fatalf("campaign has %d scenarios, want >= 24", g.Size())
	}
	if len(g.Machines) != len(machine.Names()) {
		t.Errorf("campaign covers %d machines, want all %d", len(g.Machines), len(machine.Names()))
	}
	if len(g.Modes) != len(sweep.AllModes()) {
		t.Errorf("campaign covers %d modes, want all %d", len(g.Modes), len(sweep.AllModes()))
	}
}
