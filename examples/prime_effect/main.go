// Prime effect: a focused reproduction of the paper's central finding.
// For ranks 71 (prime: 1D decomposition, inner dimension ~216) and 72
// (8x9 decomposition, inner dimension 1920) this example compares the
// per-loop read volume, then repeats the measurement with SpecI2M
// disabled (the paper's NDA MSR experiment) to show the effect vanish.
package main

import (
	"fmt"
	"log"

	"cloversim/internal/cloverleaf"
	"cloversim/internal/decomp"
	"cloversim/internal/machine"
	"cloversim/internal/model"
)

func traffic(ranks int, specI2MOff bool) *cloverleaf.TrafficResult {
	res, err := cloverleaf.RunTraffic(cloverleaf.TrafficOptions{
		Machine:     machine.ICX8360Y(),
		Ranks:       ranks,
		MaxRows:     32,
		AlignArrays: true,
		HotspotOnly: true,
		SpecI2MOff:  specI2MOff,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Printf("Decompositions of the 15360^2 Tiny grid:\n")
	for _, n := range []int{71, 72} {
		cx, cy := decomp.Factorize(n, 15360, 15360)
		fmt.Printf("  %d ranks -> %dx%d chunks, inner dimension %d%s\n",
			n, cx, cy, decomp.InnerDim(n, 15360, 15360),
			map[bool]string{true: "  (prime: inner dimension cut only)"}[decomp.IsPrime(n)])
	}

	on71, on72 := traffic(71, false), traffic(72, false)
	off71, off72 := traffic(71, true), traffic(72, true)

	fmt.Printf("\nread volume per iteration [byte/it], class-(i) loops:\n")
	fmt.Printf("%-6s %12s %12s %9s %22s\n", "loop", "72 ranks", "71 ranks", "extra", "71 ranks, SpecI2M off")
	for _, name := range []string{"am04", "am06", "am08", "am10"} {
		r72 := on72.Loop(name).ReadPerIt(on72.InnerCells)
		r71 := on71.Loop(name).ReadPerIt(on71.InnerCells)
		o71 := off71.Loop(name).ReadPerIt(off71.InnerCells)
		o72 := off72.Loop(name).ReadPerIt(off72.InnerCells)
		fmt.Printf("%-6s %12.2f %12.2f %8.1f%% %12.2f (+%.1f%%)\n",
			name, r72, r71, 100*(r71/r72-1), o71, 100*(o71/o72-1))
	}

	fmt.Printf("\nnode memory volume per hydro step:\n")
	fmt.Printf("  SpecI2M on : 72 ranks %6.2f GB   71 ranks %6.2f GB (+%.1f%%)\n",
		on72.BytesPerStep()/1e9, on71.BytesPerStep()/1e9,
		100*(on71.BytesPerStep()/on72.BytesPerStep()-1))
	fmt.Printf("  SpecI2M off: 72 ranks %6.2f GB   71 ranks %6.2f GB (+%.1f%%)\n",
		off72.BytesPerStep()/1e9, off71.BytesPerStep()/1e9,
		100*(off71.BytesPerStep()/off72.BytesPerStep()-1))

	fmt.Println("\nWith SpecI2M disabled the balance returns to the single-core value")
	fmt.Println("(Table I, LCF+WA column) for all ranks and the prime effect shrinks to")
	fmt.Println("plain halo overhead — matching Sec. V-A of the paper.")
	row, _ := model.Table1ByName("am04")
	fmt.Printf("e.g. am04 off-balance %.2f byte/it vs Table I LCF+WA = %d byte/it\n",
		off72.Loop("am04").BytesPerIt(off72.InnerCells), row.BytesLCFWA())
}
