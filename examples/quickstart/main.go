// Quickstart: run a small CloverLeaf simulation serially and on four
// in-process MPI ranks, verify the two agree, then reproduce the paper's
// Table I for a single core.
package main

import (
	"fmt"
	"log"
	"math"

	"cloversim"
	"cloversim/internal/cloverleaf"
)

func main() {
	// 1. Real hydrodynamics: a 240^2 grid for 30 steps.
	cfg := cloverleaf.Small(240, 30)
	serial, err := cloverleaf.RunSerial(cfg)
	if err != nil {
		log.Fatal(err)
	}
	par, _, err := cloverleaf.RunMPI(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CloverLeaf 240x240, 30 steps")
	fmt.Printf("  serial: mass %.8e  internal energy %.8e\n", serial.Mass, serial.InternalEnergy)
	fmt.Printf("  4 rank: mass %.8e  internal energy %.8e\n", par.Mass, par.InternalEnergy)
	// Halo-exchange ordering differs slightly from the serial sweep at
	// subdomain corners; agreement to ~1e-4 relative is the expected
	// envelope for this scheme.
	if rel(serial.Mass, par.Mass) > 1e-3 {
		log.Fatalf("serial and MPI runs diverged: %g vs %g", serial.Mass, par.Mass)
	}
	fmt.Println("  serial and MPI runs agree ✔")

	// 2. Memory-traffic study: single-core code balance vs Table I.
	rows, table, err := cloversim.TableI(cloversim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for _, r := range rows {
		e := math.Abs(r.Simulated-r.MeasuredSingleCore) / r.MeasuredSingleCore
		if e > worst {
			worst = e
		}
	}
	fmt.Printf("\nTable I single-core code balance (worst error vs paper: %.1f%%)\n", 100*worst)
	fmt.Println(table.Format())
}

func rel(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(math.Abs(a), 1e-300)
}
