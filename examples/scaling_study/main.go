// Scaling study: reproduce the shape of the paper's Fig. 2 — speedup and
// memory bandwidth versus MPI rank count with compact pinning — and show
// the prime-number breakdowns (speedup dips without bandwidth dips).
package main

import (
	"fmt"
	"log"
	"strings"

	"cloversim"
)

func main() {
	opts := cloversim.Options{
		// A representative subset keeps this example fast; run
		// cmd/experiments -exp scaling for the full 1..72 sweep.
		Ranks: []int{1, 2, 4, 6, 9, 12, 16, 17, 18, 19, 20, 24, 29, 30,
			36, 37, 38, 43, 44, 48, 53, 54, 60, 64, 67, 68, 71, 72},
	}
	pts, _, err := cloversim.Figure2Scaling(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ranks  speedup  bandwidth   inner-dim  (bar: speedup; * = prime)")
	for _, p := range pts {
		mark := " "
		if p.Prime {
			mark = "*"
		}
		bar := strings.Repeat("#", int(p.Speedup+0.5))
		fmt.Printf("%4d%s %8.2f %7.0f GB/s %8d  %s\n",
			p.Ranks, mark, p.Speedup, p.BandwidthGBs, p.InnerDimension, bar)
	}

	// Quantify the prime effect at the top of the node.
	var s71, s72 float64
	for _, p := range pts {
		if p.Ranks == 71 {
			s71 = p.Speedup
		}
		if p.Ranks == 72 {
			s72 = p.Speedup
		}
	}
	fmt.Printf("\nPrime-number effect: speedup(71) = %.2f vs speedup(72) = %.2f (-%.1f%%)\n",
		s71, s72, 100*(1-s71/s72))
	fmt.Println("Bandwidth stays saturated at prime counts — the slowdown is extra traffic,")
	fmt.Println("not lost bandwidth (SpecI2M write-allocate evasion fails on short inner loops).")
}
