// Stencil analysis: use the library on a loop the paper never saw — a 2D
// 5-point Jacobi sweep — to show how a downstream user analyzes their own
// kernel: analytic code-balance limits (layer conditions, write-allocate),
// simulated traffic across core counts, and the effect of short inner
// dimensions on SpecI2M.
package main

import (
	"fmt"

	"cloversim/internal/machine"
	"cloversim/internal/model"
	"cloversim/internal/trace"
)

func main() {
	spec := machine.ICX8360Y()

	build := func(rowElems int) (*trace.Loop, trace.Bounds) {
		ar := trace.NewArena(true)
		rows := 64
		x := ar.Alloc("x", 0, rowElems+1, 0, rows+1)
		y := ar.Alloc("y", 0, rowElems+1, 0, rows+1)
		loop := &trace.Loop{
			Name: "jacobi5",
			Reads: []trace.Access{
				{A: x, DJ: 0, DK: -1}, {A: x, DJ: -1, DK: 0}, {A: x, DJ: 0, DK: 0},
				{A: x, DJ: 1, DK: 0}, {A: x, DJ: 0, DK: 1},
			},
			Writes:     []trace.Write{{A: y, NT: true}},
			FlopsPerIt: 5,
			Eligible:   true,
		}
		return loop, trace.Bounds{JLo: 1, JHi: rowElems, KLo: 1, KHi: rows}
	}

	// Analytic model first.
	loop, _ := build(4096)
	m := model.FromLoop(loop)
	fmt.Println("Jacobi 5-point stencil, analytic model:")
	fmt.Printf("  min (LC ok, WA evaded)  %d byte/it\n", m.BytesMin())
	fmt.Printf("  LC ok + write-allocate  %d byte/it\n", m.BytesLCFWA())
	fmt.Printf("  LC broken, WA evaded    %d byte/it\n", m.BytesLCB())
	fmt.Printf("  worst case              %d byte/it\n", m.BytesMax())
	fmt.Printf("  layer condition: 3 rows of %d elements need %.0f KiB cache\n",
		4096, float64(model.LayerCondition(3, 4096))/1024)

	// Simulated traffic: long vs short inner dimension across core counts.
	fmt.Println("\nsimulated byte/it (SpecI2M), long (4096) vs short (216) rows:")
	fmt.Println("cores   long rows   short rows")
	for _, n := range []int{1, 4, 9, 18, 36, 72} {
		line := fmt.Sprintf("%5d", n)
		for _, dim := range []int{4096, 216} {
			loop, b := build(dim)
			x := trace.NewExecutor(spec)
			x.SetEnv(trace.Env{
				Pressure:      spec.PressureAt(0, n),
				NodeFraction:  float64(n) / float64(spec.Cores()),
				ActiveSockets: spec.ActiveSockets(n),
				PFOn:          true,
			})
			c := x.Run(loop, b)
			bpi := float64(c.TotalBytes()) / float64(b.Iterations())
			line += fmt.Sprintf("  %9.2f", bpi)
		}
		fmt.Println(line)
	}
	fmt.Println("\nShort rows keep the write-allocate: the SpecI2M run detector never")
	fmt.Println("warms up — the same mechanism behind the paper's prime-number effect.")
}
