// NT-store tuning: reproduce the paper's optimization study (Sec. V-B,
// Fig. 7). Compares four full-node builds of CloverLeaf:
//
//  1. SpecI2M disabled (the MSR knob) — every store pays a write-allocate,
//  2. original code — SpecI2M evades most WAs, but not on ac01/ac05/ac02/ac06,
//  3. NT stores only,
//  4. NT stores + restructured ac01/ac05 (the paper's best variant,
//     on average 5.8% lower code balance than the original).
package main

import (
	"fmt"
	"log"

	"cloversim/internal/cloverleaf"
	"cloversim/internal/machine"
	"cloversim/internal/model"
)

func run(name string, o cloverleaf.TrafficOptions) *cloverleaf.TrafficResult {
	res, err := cloverleaf.RunTraffic(o)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return res
}

func main() {
	spec := machine.ICX8360Y()
	base := cloverleaf.TrafficOptions{
		Machine: spec, Ranks: spec.Cores(), MaxRows: 32,
		AlignArrays: true, HotspotOnly: true,
	}

	noI2M := base
	noI2M.SpecI2MOff = true
	nt := base
	nt.NTStores = true
	best := nt
	best.OptimizeLoops = true

	variants := []struct {
		name string
		res  *cloverleaf.TrafficResult
	}{
		{"SpecI2M off", run("off", noI2M)},
		{"original", run("orig", base)},
		{"NT stores", run("nt", nt)},
		{"NT + restructured", run("best", best)},
	}

	fmt.Printf("%-6s", "loop")
	for _, v := range variants {
		fmt.Printf(" %18s", v.name)
	}
	fmt.Println(" (byte/it, 72 ranks)")
	sums := make([]float64, len(variants))
	for _, name := range model.HotspotLoopNames() {
		fmt.Printf("%-6s", name)
		for i, v := range variants {
			b := v.res.Loop(name).BytesPerIt(v.res.InnerCells)
			sums[i] += b
			fmt.Printf(" %18.2f", b)
		}
		fmt.Println()
	}
	fmt.Printf("%-6s", "sum")
	for _, s := range sums {
		fmt.Printf(" %18.2f", s)
	}
	fmt.Println()

	origSum, bestSum := sums[1], sums[3]
	fmt.Printf("\nNT + restructuring lowers total hotspot code balance by %.1f%%\n",
		100*(1-bestSum/origSum))
	fmt.Println("(the paper reports 5.8% on average across loops, max 23.2%)")
}
