package cloversim

import (
	"fmt"

	"cloversim/internal/bench"
	"cloversim/internal/cloverleaf"
	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

// RunScenario is the standard whole-paper campaign workload for one
// sweep scenario: the CloverLeaf traffic study plus time model at the
// scenario's rank count, and the store/copy microbenchmarks at the
// scenario's thread count, all under the scenario's evasion mode.
// It is the Runner that cmd/sweep feeds to the sweep engine.
func RunScenario(s sweep.Scenario) (sweep.Metrics, error) {
	spec, ok := machine.ByName(s.Machine)
	if !ok {
		return nil, fmt.Errorf("cloversim: unknown machine %q (have %v)", s.Machine, machine.Names())
	}
	ranks := s.Ranks
	if ranks <= 0 {
		ranks = spec.Cores()
	}
	threads := s.Threads
	if threads <= 0 {
		threads = spec.Cores()
	}
	maxRows := s.MaxRows
	switch {
	case maxRows == 0:
		maxRows = 32 // tractable default; traffic/it is row-invariant
	case maxRows < 0:
		maxRows = 0 // paper-faithful full extent
	}

	to := cloverleaf.TrafficOptions{
		Machine:       spec,
		Ranks:         ranks,
		GridX:         s.Mesh.X,
		GridY:         s.Mesh.Y,
		MaxRows:       maxRows,
		AlignArrays:   true,
		NTStores:      s.Mode.NTStores,
		OptimizeLoops: s.Mode.OptimizeLoops,
		SpecI2MOff:    s.Mode.SpecI2MOff,
		PFOff:         s.Mode.PFOff,
		Seed:          s.Seed,
	}
	m, err := cloverleaf.ModelNode(to)
	if err != nil {
		return nil, err
	}

	var out sweep.Metrics
	out.Add("step_sec", m.StepSeconds)
	out.Add("total_step_sec", m.TotalStepSeconds)
	out.Add("mpi_sec", m.MPIPerStep.Total())
	out.Add("bandwidth_gbs", m.BandwidthBytes/1e9)
	out.Add("bytes_per_cell", m.Traffic.BytesPerStep()/m.Traffic.InnerCells)

	// The microbenchmarks honor the SpecI2M MSR knob via a spec copy.
	bspec := spec
	if s.Mode.SpecI2MOff {
		c := *spec
		c.I2M.Enabled = false
		bspec = &c
	}
	st, err := bench.RunStore(bench.StoreOptions{
		Machine: bspec, Streams: 1, NT: s.Mode.NTStores, Cores: threads,
		BytesPerStream: 2 << 20, PFOff: s.Mode.PFOff, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	out.Add("store_ratio", st.Ratio())
	cp, err := bench.RunCopy(bench.CopyOptions{
		Machine: bspec, Cores: threads, Elems: 1 << 18,
		NT: s.Mode.NTStores, PFOff: s.Mode.PFOff, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	out.Add("copy_read_bpi", cp.ReadPerIt())
	out.Add("copy_write_bpi", cp.WritePerIt())
	out.Add("copy_itom_bpi", cp.ItoMPerIt())
	return out, nil
}

// CampaignGrid is the full cross-product campaign of the paper: every
// machine preset under every write-allocate-evasion mode, full node.
func CampaignGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Machines: machine.Names(),
		Modes:    sweep.AllModes(),
		Seed:     seed,
	}
}
