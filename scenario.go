package cloversim

import (
	"context"
	"fmt"

	"cloversim/internal/machine"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// PhysicsVersion tags every persisted campaign result with the
// semantic version of the simulation physics: the memsim hierarchy,
// the write-allocate store engine, the analytic models and the
// workload traffic generators. The persistent result store
// (internal/store) refuses to serve records written under a different
// version, so stale results can never masquerade as current ones.
//
// Bump it whenever a change alters simulated results — exactly the
// changes the golden-campaign suite catches as fixture diffs. The pin
// in testdata/physics_version (checked by TestPhysicsVersionPinned,
// rewritten by -update-golden) ties the two together: regenerating the
// golden fixtures forces this constant into the review diff.
const PhysicsVersion = "p1"

// RunScenario executes one sweep scenario through the workload
// registry: the scenario's workload (default: the CloverLeaf study)
// resolved by name, with runner defaults applied for unset axes. It is
// the Runner that cmd/sweep feeds to the sweep engine.
func RunScenario(s sweep.Scenario) (sweep.Metrics, error) {
	return workload.Run(s)
}

// RunScenarioContext is RunScenario in the engine's cancellation-aware
// runner form: it refuses to start a simulation once ctx has ended
// (the last check before the workload runs — the engine's own dispatch
// and slot-acquire checks come earlier), but a simulation that has
// already begun runs to completion so its result can be cached and
// persisted. It is the RunnerContext that cmd/sweep and cmd/sweepd
// feed to the sweep engine.
func RunScenarioContext(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
	if err := ctx.Err(); err != nil {
		// Nothing simulated: carry the engine's distinguished unstarted
		// marker so the cell counts as skipped, not failed.
		return nil, fmt.Errorf("cloversim: scenario %s (%s) %w: %w", s.ID(), s.Label(), sweep.ErrUnstarted, err)
	}
	return workload.Run(s)
}

// CampaignGrid is the full cross-product campaign of the paper and
// beyond: every machine preset x every registered workload x every
// write-allocate-evasion mode, full node.
func CampaignGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Machines:  machine.Names(),
		Workloads: workload.Names(),
		Modes:     sweep.AllModes(),
		Seed:      seed,
	}
}
