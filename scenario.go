package cloversim

import (
	"cloversim/internal/machine"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// RunScenario executes one sweep scenario through the workload
// registry: the scenario's workload (default: the CloverLeaf study)
// resolved by name, with runner defaults applied for unset axes. It is
// the Runner that cmd/sweep feeds to the sweep engine.
func RunScenario(s sweep.Scenario) (sweep.Metrics, error) {
	return workload.Run(s)
}

// CampaignGrid is the full cross-product campaign of the paper and
// beyond: every machine preset x every registered workload x every
// write-allocate-evasion mode, full node.
func CampaignGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Machines:  machine.Names(),
		Workloads: workload.Names(),
		Modes:     sweep.AllModes(),
		Seed:      seed,
	}
}
